//! Deterministic sharded multi-NIC fleet simulation.
//!
//! The paper evaluates one NIC against a synthetic full-duplex stream;
//! this crate scales the reproduction out: `N` complete [`NicSystem`]s
//! (firmware, assists, host driver and all) exchange real frames
//! through a switch [`Fabric`] — per-egress-port output queues, link
//! bandwidth and latency, finite buffers with drops — driven by a
//! flow-level [`Workload`] (traffic matrices, packet-size mixes,
//! bursty arrivals, incast) instead of the fixed-size generators.
//!
//! # The epoch engine
//!
//! The fleet advances in global **epochs** of length `E = link
//! latency`. Within an epoch every NIC runs independently on the
//! sequential event kernel ([`NicSystem::run_until`]); at the epoch
//! barrier the engine drains each NIC's wire-completed egress frames,
//! feeds them through the fabric in canonical `(wire-done time, source
//! NIC)` order, and appends the resulting deliveries to the
//! destination NICs' arrival queues. This conservative schedule is
//! exact, not approximate: a frame leaving NIC `i`'s wire at time `w`
//! traverses two links (`i → switch → j`) plus the egress queue, so it
//! cannot arrive before `w + 2E` — strictly after the end of the epoch
//! in which it is drained. No NIC can ever observe a frame earlier
//! than the barrier hands it over, so epoch-sliced execution is
//! bit-identical to a global event-ordered co-simulation.
//!
//! # Sharding
//!
//! With `shards > 1` the NICs split into contiguous chunks, one per
//! persistent worker thread, synchronized by an
//! [`EpochBarrier`](nicsim_sim::EpochBarrier) generation per epoch;
//! the frame exchange runs on the coordinator between generations.
//! Because epochs are global and the fabric ordering is canonical,
//! results are bit-identical at any shard count — per-NIC [`RunStats`]
//! and the fabric's order-sensitive delivery digest alike, which the
//! engine's tests assert across shard counts and dispatch modes.
//!
//! Quiet NICs skip whole epochs: the engine consults
//! [`NicSystem::next_activity`] (the event kernel's own wake bound)
//! and elides the `run_until` call when the NIC provably cannot act
//! before the epoch ends — an incast victim or a NIC with an exhausted
//! schedule costs one wake computation per epoch, not a kernel entry.

use nicsim::{NicConfig, NicSystem, RunStats};
use nicsim_net::workload::Workload;
use nicsim_net::{Fabric, FabricConfig, FabricStats, PortStats};
use nicsim_obs::{FrameTracker, LatencySummary};
use nicsim_sim::{EpochBarrier, Ps};

/// Fleet-level configuration: how many NICs, how they are sharded,
/// what fabric connects them, and what traffic they offer.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of NIC + host systems (2..=256; sequence numbers carry
    /// the source id in their top byte).
    pub nics: usize,
    /// Worker threads to shard the NICs across (1 = run on the calling
    /// thread, no barrier). Results are identical at any value.
    pub shards: usize,
    /// Per-NIC configuration (all NICs identical; `send_enabled` and
    /// `recv_enabled` must both be set so the driver posts the fleet
    /// schedule and MAC 0 accepts injected arrivals).
    pub nic: NicConfig,
    /// The switch model between the NICs.
    pub fabric: FabricConfig,
    /// The offered traffic.
    pub workload: Workload,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            nics: 4,
            shards: 1,
            nic: NicConfig::default(),
            fabric: FabricConfig::default(),
            workload: Workload::default(),
        }
    }
}

/// What went wrong assembling a fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetError(pub String);

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fleet configuration: {}", self.0)
    }
}

impl std::error::Error for FleetError {}

/// Results of one measured fleet run.
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// Per-NIC statistics for the measurement window, in NIC order.
    /// Bit-comparable across runs and shard counts ([`RunStats`] is
    /// `PartialEq`).
    pub per_nic: Vec<RunStats>,
    /// Fabric totals for the window, including the order-sensitive
    /// delivery/drop digest.
    pub fabric: FabricStats,
    /// Per-egress-port fabric statistics, in NIC order.
    pub ports: Vec<PortStats>,
    /// Frame-lifecycle latency percentiles over the whole fleet: every
    /// NIC's [`FrameTracker`] merged, so a frame's TX half (source
    /// NIC) and RX half (destination NIC) combine into one timeline.
    pub latency: LatencySummary,
    /// Epochs executed (warmup + window).
    pub epochs: u64,
    /// NIC-epochs elided because the NIC provably could not act before
    /// the epoch boundary.
    pub nic_epochs_skipped: u64,
    /// Simulated CPU cycles per NIC (identical for all NICs).
    pub cycles_per_nic: u64,
}

impl FleetStats {
    /// Aggregate delivered UDP goodput over the window, summed over
    /// every NIC's receive side.
    pub fn goodput_gbps(&self) -> f64 {
        self.per_nic.iter().map(|s| s.rx_udp_gbps).sum()
    }

    /// Frames the fabric dropped on full egress buffers.
    pub fn fabric_drops(&self) -> u64 {
        self.fabric.dropped
    }
}

/// The assembled fleet: `N` systems, the fabric, and the epoch clock.
pub struct Fleet {
    cfg: FleetConfig,
    systems: Vec<NicSystem<FrameTracker>>,
    fabric: Fabric,
    /// Epoch length: the fabric's per-link latency.
    epoch: Ps,
    /// NIC-epochs elided so far.
    skipped: u64,
    /// Guards against reusing a consumed fleet.
    ran: bool,
}

impl Fleet {
    /// Assemble a fleet: validate the configuration, build every NIC
    /// system, and switch each into fleet mode with its share of the
    /// workload schedule generated over `horizon` (which must cover
    /// the whole warmup + window the fleet will run).
    pub fn new(cfg: FleetConfig, horizon: Ps) -> Result<Fleet, FleetError> {
        if !(2..=256).contains(&cfg.nics) {
            return Err(FleetError(format!(
                "nics must be in 2..=256, got {}",
                cfg.nics
            )));
        }
        if cfg.shards == 0 || cfg.shards > cfg.nics {
            return Err(FleetError(format!(
                "shards must be in 1..={}, got {}",
                cfg.nics, cfg.shards
            )));
        }
        if !cfg.nic.send_enabled || !cfg.nic.recv_enabled {
            return Err(FleetError(
                "fleet NICs need send_enabled and recv_enabled".into(),
            ));
        }
        if cfg.nic.offered_tx_fps.is_some() || cfg.nic.offered_rx_fps.is_some() {
            return Err(FleetError(
                "offered-load pacing conflicts with the fleet schedule".into(),
            ));
        }
        if cfg.nic.faults.is_some() {
            return Err(FleetError("fault plans are per-NIC runs only".into()));
        }
        cfg.workload.check(cfg.nics).map_err(FleetError)?;
        let fabric = Fabric::new(cfg.nics, cfg.fabric);
        let epoch = cfg.fabric.link_latency;
        let period = nicsim_sim::Freq::from_mhz(cfg.nic.cpu_mhz).period();
        if epoch.0 < 2 * period.0 {
            return Err(FleetError(format!(
                "link latency {} ps must be at least two CPU periods ({} ps): \
                 the epoch engine needs one clock cycle of conservative slack",
                epoch.0,
                2 * period.0
            )));
        }
        let mut systems = Vec::with_capacity(cfg.nics);
        for i in 0..cfg.nics {
            let mut sys = NicSystem::build(cfg.nic)
                .probe(FrameTracker::new())
                .finish()
                .map_err(|e| FleetError(e.to_string()))?;
            let schedule = cfg.workload.schedule(i, cfg.nics, horizon);
            sys.enable_fleet(i as u16, schedule);
            systems.push(sys);
        }
        Ok(Fleet {
            cfg,
            systems,
            fabric,
            epoch,
            skipped: 0,
            ran: false,
        })
    }

    /// The configuration this fleet was assembled from.
    pub fn config(&self) -> FleetConfig {
        self.cfg
    }

    /// Warm the fleet up, then measure a steady-state window; both
    /// spans are rounded up to whole epochs. Single-shot: a fleet's
    /// schedules and queues are consumed by the run.
    pub fn run_measured(&mut self, warmup: Ps, window: Ps) -> FleetStats {
        assert!(!self.ran, "a fleet runs once; build a new one");
        self.ran = true;
        let warm_epochs = warmup.0.div_ceil(self.epoch.0);
        let total_epochs = warm_epochs + window.0.div_ceil(self.epoch.0).max(1);

        if self.cfg.shards == 1 {
            self.run_epochs_sequential(warm_epochs, total_epochs);
        } else {
            self.run_epochs_sharded(warm_epochs, total_epochs);
        }

        let final_end = Ps(total_epochs * self.epoch.0);
        for sys in &mut self.systems {
            sys.run_until(final_end);
        }
        let mut merged = FrameTracker::new();
        for sys in &self.systems {
            merged.merge(sys.probe());
        }
        let per_nic: Vec<RunStats> = self.systems.iter().map(|s| s.collect()).collect();
        let cycles_per_nic = per_nic[0].core_ticks;
        FleetStats {
            per_nic,
            fabric: self.fabric.stats(),
            ports: self.fabric.port_stats(),
            latency: merged.summary(),
            epochs: total_epochs,
            nic_epochs_skipped: self.skipped,
            cycles_per_nic,
        }
    }

    /// The epoch loop on the calling thread: advance every NIC to each
    /// boundary in turn, then exchange frames.
    fn run_epochs_sequential(&mut self, warm_epochs: u64, total_epochs: u64) {
        for k in 1..=total_epochs {
            let end = Ps(k * self.epoch.0);
            for sys in &mut self.systems {
                if sys.next_activity() <= end {
                    sys.run_until(end);
                } else {
                    self.skipped += 1;
                }
            }
            self.exchange(k, warm_epochs);
        }
    }

    /// The epoch loop across `shards` persistent worker threads, one
    /// contiguous chunk of NICs each, in lockstep on an
    /// [`EpochBarrier`] generation per epoch. The coordinator touches
    /// the systems only between `wait_done` and the next `open`, when
    /// every worker is parked at the barrier.
    fn run_epochs_sharded(&mut self, warm_epochs: u64, total_epochs: u64) {
        let shards = self.cfg.shards;
        let epoch = self.epoch;
        let mut worker_skipped = vec![0u64; shards];

        /// One worker's view: a raw chunk of the systems vector plus
        /// its skip counter. Dereferenced only while a generation is
        /// open (see the disjointness argument at the spawn site).
        struct Shard {
            systems: *mut [NicSystem<FrameTracker>],
            skipped: *mut u64,
        }
        // SAFETY: the pointers are dereferenced only between
        // `wait_open` and `finish`, when the coordinator touches
        // neither the chunk nor the counter; chunks are disjoint
        // sub-slices, so no two workers alias. The NIC systems contain
        // thread-unsafe internals (`Rc` core slots), but each system's
        // are reachable only through that system, and a system is only
        // ever touched by the one thread holding its chunk while a
        // generation is open — accesses hand over at the barrier's
        // Release/Acquire edges, never overlap.
        unsafe impl Send for Shard {}

        let mut shards_vec = Vec::with_capacity(shards);
        {
            let mut rest: &mut [NicSystem<FrameTracker>] = &mut self.systems;
            let mut counters = worker_skipped.iter_mut();
            let base = rest.len() / shards;
            let extra = rest.len() % shards;
            for w in 0..shards {
                let take = base + usize::from(w < extra);
                let (chunk, tail) = rest.split_at_mut(take);
                rest = tail;
                shards_vec.push(Shard {
                    systems: chunk,
                    skipped: counters.next().expect("one counter per shard"),
                });
            }
        }

        let barrier = EpochBarrier::new(shards);
        std::thread::scope(|scope| {
            let b = &barrier;
            let handles: Vec<_> = shards_vec
                .into_iter()
                .enumerate()
                .map(|(idx, shard)| {
                    scope.spawn(move || {
                        // Capture the Shard wrapper whole: disjoint
                        // field capture would otherwise move the raw
                        // pointers individually, bypassing its Send.
                        let shard = shard;
                        // Poison the barrier if a NIC panics so the
                        // coordinator fails fast instead of spinning.
                        struct Guard<'a>(&'a EpochBarrier);
                        impl Drop for Guard<'_> {
                            fn drop(&mut self) {
                                if std::thread::panicking() {
                                    self.0.poison();
                                }
                            }
                        }
                        let _guard = Guard(b);
                        let mut last = 0;
                        while let Some(g) = b.wait_open(last) {
                            last = g;
                            let end = Ps(g * epoch.0);
                            // SAFETY: generation `g` is open — the
                            // coordinator is blocked in wait_done and
                            // the chunk is exclusively this worker's.
                            let systems = unsafe { &mut *shard.systems };
                            let mut skipped = 0u64;
                            for sys in systems.iter_mut() {
                                if sys.next_activity() <= end {
                                    sys.run_until(end);
                                } else {
                                    skipped += 1;
                                }
                            }
                            unsafe { *shard.skipped += skipped };
                            b.finish(idx, g);
                        }
                    })
                })
                .collect();
            for h in &handles {
                barrier.register_worker(h.thread().clone());
            }
            for k in 1..=total_epochs {
                barrier.open(k);
                barrier.wait_done(k);
                // Exclusive section: all workers parked, all shard
                // writes acquired.
                self.exchange(k, warm_epochs);
            }
            barrier.shutdown();
        });
        self.skipped += worker_skipped.iter().sum::<u64>();
    }

    /// The epoch-barrier frame exchange: drain every NIC's egress,
    /// present the union to the fabric in canonical `(wire-done time,
    /// source NIC)` order, inject the deliveries, and reset the
    /// measurement window at the warmup boundary.
    fn exchange(&mut self, k: u64, warm_epochs: u64) {
        let mut offers: Vec<(Ps, usize, Vec<u8>)> = Vec::new();
        for (src, sys) in self.systems.iter_mut().enumerate() {
            for (w, frame) in sys.take_egress() {
                offers.push((w, src, frame));
            }
        }
        // Wire-done times are unique per source (one serialized wire),
        // so the key is total and unstable sorting is deterministic.
        offers.sort_unstable_by_key(|(w, src, _)| (w.0, *src));
        for (w, src, frame) in offers {
            if let Some(d) = self.fabric.offer(w, src, frame) {
                self.systems[d.dst].inject_rx(d.at, d.frame);
            }
        }
        if k == warm_epochs {
            let boundary = Ps(k * self.epoch.0);
            for sys in &mut self.systems {
                // Quiet NICs may have skipped up to this boundary:
                // bring every clock to it so all windows are equal
                // (a provable no-op for the skipped ones).
                sys.run_until(boundary);
                sys.reset_window();
            }
            self.fabric.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nicsim_net::workload::{Arrivals, Pattern, SizeMix};

    fn small_cfg() -> FleetConfig {
        FleetConfig {
            nics: 4,
            shards: 1,
            nic: NicConfig::builder()
                .cores(2)
                .cpu_mhz(500)
                .build()
                .expect("valid test config"),
            fabric: FabricConfig::default(),
            workload: Workload {
                pattern: Pattern::Uniform,
                sizes: SizeMix::Fixed(256),
                arrivals: Arrivals::Cbr,
                fps: 50_000.0,
                seed: 7,
            },
        }
    }

    #[test]
    fn rejects_bad_configs() {
        let horizon = Ps::from_us(100);
        let mut cfg = small_cfg();
        cfg.nics = 1;
        assert!(Fleet::new(cfg, horizon).is_err());
        let mut cfg = small_cfg();
        cfg.shards = 9;
        assert!(Fleet::new(cfg, horizon).is_err());
        let mut cfg = small_cfg();
        cfg.nic.send_enabled = false;
        assert!(Fleet::new(cfg, horizon).is_err());
        let mut cfg = small_cfg();
        cfg.nic.offered_tx_fps = Some(1e6);
        assert!(Fleet::new(cfg, horizon).is_err());
        let mut cfg = small_cfg();
        cfg.fabric.link_latency = Ps(1_000);
        assert!(Fleet::new(cfg, horizon).is_err(), "epoch under one cycle");
    }

    #[test]
    fn fleet_moves_frames_end_to_end() {
        let warmup = Ps::from_us(200);
        let window = Ps::from_us(300);
        let mut fleet = Fleet::new(small_cfg(), Ps(warmup.0 + window.0)).unwrap();
        let stats = fleet.run_measured(warmup, window);
        assert_eq!(stats.per_nic.len(), 4);
        let tx: u64 = stats.per_nic.iter().map(|s| s.tx_frames).sum();
        let rx: u64 = stats.per_nic.iter().map(|s| s.rx_frames).sum();
        assert!(tx > 0, "no fleet transmit traffic");
        assert!(rx > 0, "no fleet receive traffic");
        assert!(stats.fabric.delivered > 0, "fabric delivered nothing");
        assert!(stats.goodput_gbps() > 0.0);
        for s in &stats.per_nic {
            assert_eq!(s.rx_corrupt, 0);
            assert_eq!(s.rx_out_of_order, 0);
            assert_eq!(s.tx_errors, 0);
        }
    }

    #[test]
    fn incast_victim_skips_epochs() {
        let mut cfg = small_cfg();
        cfg.workload.pattern = Pattern::Incast { target: 0 };
        // Whole-epoch elision needs an idle NIC: polling cores never
        // park (wake bound 1 every cycle), interrupt-dispatch cores do.
        cfg.nic.dispatch = nicsim::DispatchMode::Interrupt;
        let warmup = Ps::from_us(100);
        let window = Ps::from_us(200);
        let mut fleet = Fleet::new(cfg, Ps(warmup.0 + window.0)).unwrap();
        let stats = fleet.run_measured(warmup, window);
        assert!(
            stats.per_nic[0].rx_frames > 0,
            "incast target received nothing"
        );
        assert_eq!(stats.per_nic[0].tx_frames, 0, "incast victim transmitted");
        assert!(
            stats.nic_epochs_skipped > 0,
            "quiet-epoch skipping never engaged"
        );
    }
}
