//! # nicsim-fault — the deterministic fault-injection plane
//!
//! The paper evaluates the NIC only under clean traffic; this crate adds
//! the unhappy paths a production 10 GbE controller must survive: CRC-bad
//! frames on the wire, transient DMA/PCI errors and stalls, single-bit
//! SDRAM ECC events, and wedged assist units. Everything is policy and
//! bookkeeping — the *mechanisms* (corrupting a frame, retrying a DMA,
//! resetting an assist) live at each layer's natural boundary in
//! `nicsim-net`, `nicsim-assists`, `nicsim-mem`, and `nicsim` core.
//!
//! ## Determinism contract
//!
//! A run is reproducible from `(seed, plan)`:
//!
//! * Every injection site owns an independent xorshift64* stream, derived
//!   from the plan seed and a fixed site id via splitmix64, so adding or
//!   removing draws at one site never perturbs another.
//! * Draws happen only at *event-shaped* points — a frame leaving the
//!   generator, a payload DMA command starting, a read burst being
//!   granted — which occur at identical simulated times in both the
//!   dense and event-driven kernels. No site ever draws per tick.
//! * Hang onset and watchdog deadlines are expressed in simulated time
//!   (`Ps`), never in executed-step counts, so cycle skipping cannot
//!   shift them.
//!
//! With no [`FaultPlan`] configured every site is `None`, no RNG exists,
//! and the simulator's behavior (and `RunStats`) is bit-identical to a
//! build without this crate wired in.

use nicsim_sim::Ps;

/// Site id for the link-level generator stream.
pub const SITE_LINK: u64 = 1;
/// Site id for the DMA read (host → NIC) engine stream.
pub const SITE_DMA_READ: u64 = 2;
/// Site id for the DMA write (NIC → host) engine stream.
pub const SITE_DMA_WRITE: u64 = 3;
/// Site id for the frame-memory ECC stream.
pub const SITE_ECC: u64 = 4;
/// Base site id for per-source fabric link streams (corruption); link
/// `i` uses `SITE_FABRIC_LINK_BASE + i`. The high bases keep the fleet
/// site families disjoint from the per-engine `SITE_DMA_* + 8k` ladder.
pub const SITE_FABRIC_LINK_BASE: u64 = 1 << 32;
/// Site id for the fabric-wide port-buffer squeeze stream.
pub const SITE_FABRIC_SQUEEZE: u64 = 1 << 33;
/// Base site id for per-NIC crash schedules (`+ nic`).
pub const SITE_NIC_CRASH_BASE: u64 = 1 << 34;
/// Base site id for per-core firmware instruction-fault streams
/// (`+ core_id`).
pub const SITE_FW_BASE: u64 = 1 << 35;
/// Base site id for deriving per-NIC plan seeds in a fleet (`+ nic`).
pub const SITE_NIC_PLAN_BASE: u64 = 1 << 36;
/// Base site id for per-source fabric link flap phases (`+ i`); kept on
/// a separate stream from the corruption draws so enabling flaps never
/// shifts the corruption decisions of the same link.
pub const SITE_FABRIC_FLAP_BASE: u64 = 1 << 37;

/// splitmix64 — seeds the per-site streams from `seed ^ site`.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xorshift64* — the workspace's standard dependency-free PRNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// A stream seeded for `site` under the plan seed (never zero).
    pub fn for_site(seed: u64, site: u64) -> XorShift64 {
        let s = splitmix64(seed ^ site.wrapping_mul(0xa076_1d64_78bd_642f));
        XorShift64 {
            state: if s == 0 { 0x853c_49e6_748f_ea9b } else { s },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// One Bernoulli draw with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            // Still consume a draw so enabling a zero-rate fault class
            // does not shift the stream of the others at this site.
            self.next_u64();
            return false;
        }
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform draw in `[0, n)` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform draw in `(0, 1]` — the open-at-zero form heavy-tail
    /// inversions need (`u.powf(-1/alpha)` stays finite).
    pub fn unit_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A complete, `Copy` fault schedule: per-event probabilities, retry and
/// watchdog policy, and the master seed. Configured through
/// `NicConfig::builder().faults(..)` or parsed from a `--faults` spec
/// (see [`FaultPlan::parse`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Master seed; each site derives its own stream from it.
    pub seed: u64,
    /// Per-frame probability of a single-bit corruption on the inbound
    /// link (caught by the MAC RX CRC32 check).
    pub link_corrupt: f64,
    /// Per-frame probability of frame truncation on the inbound link.
    pub link_truncate: f64,
    /// Per-payload-command probability of a transient DMA completion
    /// error (retried with exponential backoff, then aborted).
    pub dma_error: f64,
    /// Per-payload-command probability of a bounded PCI stall.
    pub dma_stall: f64,
    /// Duration of one PCI stall, nanoseconds.
    pub stall_ns: u64,
    /// Retry attempts before a failing DMA command is aborted.
    pub max_retries: u32,
    /// Base retry backoff, nanoseconds; attempt `n` waits
    /// `backoff_ns << n`.
    pub backoff_ns: u64,
    /// Per-read-burst probability of a correctable single-bit ECC event
    /// in the frame memory.
    pub ecc: f64,
    /// Microseconds between stuck-assist hangs on each DMA engine
    /// (0 disables hang injection). A hang persists until the watchdog
    /// resets the unit.
    pub hang_period_us: u64,
    /// Watchdog timeout, microseconds: how long an assist may sit stuck
    /// (hung with work pending) before `NicSystem` resets it. The same
    /// timeout bounds how long a crashed NIC stays down before the
    /// fleet-level watchdog resets it.
    pub watchdog_us: u64,
    /// Per-frame probability of a single-bit corruption on a fabric
    /// link (fleet runs; caught by the receiver's MAC RX CRC32 check).
    pub fabric_corrupt: f64,
    /// Microseconds between link flaps on each fabric link (0 disables
    /// flap injection). Each link's flap phase is seeded independently.
    pub flap_period_us: u64,
    /// Duration of one link flap, microseconds; frames offered while
    /// the source link is down are dropped into the fabric digest.
    pub flap_down_us: u64,
    /// Per-frame probability of a transient port-buffer squeeze at the
    /// destination port (admission capacity quartered for that frame).
    pub squeeze: f64,
    /// Microseconds between whole-NIC crashes (0 disables). The fleet
    /// watchdog detects a crashed NIC and resets it after `watchdog_us`.
    pub crash_period_us: u64,
    /// Per-DMA-write probability of poisoning one byte of the payload
    /// as it lands in host memory (caught by driver frame validation).
    pub host_poison: f64,
    /// Per-handler-dispatch probability of a firmware instruction fault
    /// (handler aborted, core restarts the scan after a fixed penalty).
    pub fw_fault: f64,
    /// Pareto shape for PCI stall durations; 0 keeps the legacy fixed
    /// `stall_ns`. With `alpha > 0` a stall lasts
    /// `stall_ns * u^(-1/alpha)` bounded at 100× `stall_ns`.
    pub stall_alpha: f64,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 1,
            link_corrupt: 0.0,
            link_truncate: 0.0,
            dma_error: 0.0,
            dma_stall: 0.0,
            stall_ns: 200,
            max_retries: 4,
            backoff_ns: 100,
            ecc: 0.0,
            hang_period_us: 0,
            watchdog_us: 50,
            fabric_corrupt: 0.0,
            flap_period_us: 0,
            flap_down_us: 5,
            squeeze: 0.0,
            crash_period_us: 0,
            host_poison: 0.0,
            fw_fault: 0.0,
            stall_alpha: 0.0,
        }
    }
}

impl FaultPlan {
    /// A plan applying `rate` uniformly to the per-event fault classes
    /// (link corruption, truncation at a tenth, DMA errors, stalls,
    /// ECC) — the axis the `fault_sweep` bench walks.
    pub fn with_rate(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            link_corrupt: rate,
            link_truncate: rate * 0.1,
            dma_error: rate,
            dma_stall: rate,
            ecc: rate,
            ..FaultPlan::default()
        }
    }

    /// Parse a `--faults` spec: a comma-separated `key=value` list.
    ///
    /// | key           | meaning                                    |
    /// |---------------|--------------------------------------------|
    /// | `seed`        | master seed (u64, default 1)               |
    /// | `rate`        | shorthand: sets `crc`, `dma`, `stall`, `ecc` to the value and `trunc` to a tenth |
    /// | `crc`         | per-frame link corruption probability      |
    /// | `trunc`       | per-frame link truncation probability      |
    /// | `dma`         | per-command transient DMA error probability|
    /// | `stall`       | per-command PCI stall probability          |
    /// | `stall_ns`    | stall duration (default 200)               |
    /// | `retries`     | DMA retry attempts before abort (default 4)|
    /// | `backoff_ns`  | base retry backoff (default 100)           |
    /// | `ecc`         | per-read-burst ECC event probability       |
    /// | `hang_us`     | hang injection period, 0 = off (default 0) |
    /// | `watchdog_us` | watchdog timeout (default 50)              |
    /// | `fab_crc`     | per-frame fabric link corruption probability |
    /// | `flap_us`     | fabric link flap period, 0 = off (default 0) |
    /// | `flap_down_us`| flap down duration (default 5)             |
    /// | `squeeze`     | per-frame port-buffer squeeze probability  |
    /// | `crash_us`    | whole-NIC crash period, 0 = off (default 0)|
    /// | `poison`      | per-DMA-write host poison probability      |
    /// | `fw`          | per-dispatch firmware fault probability    |
    /// | `stall_alpha` | Pareto shape for stall durations, 0 = fixed|
    ///
    /// Example: `--faults seed=7,crc=1e-3,dma=1e-4,hang_us=500`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for item in spec.split(',').filter(|s| !s.trim().is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("'{item}': expected key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            fn parse_as<T: std::str::FromStr>(item: &str, key: &str, v: &str) -> Result<T, String> {
                v.parse()
                    .map_err(|_| format!("'{item}': bad value for {key}"))
            }
            match key {
                "seed" => plan.seed = parse_as(item, key, value)?,
                "rate" => {
                    let r: f64 = parse_as(item, key, value)?;
                    plan.link_corrupt = r;
                    plan.link_truncate = r * 0.1;
                    plan.dma_error = r;
                    plan.dma_stall = r;
                    plan.ecc = r;
                }
                "crc" => plan.link_corrupt = parse_as(item, key, value)?,
                "trunc" => plan.link_truncate = parse_as(item, key, value)?,
                "dma" => plan.dma_error = parse_as(item, key, value)?,
                "stall" => plan.dma_stall = parse_as(item, key, value)?,
                "stall_ns" => plan.stall_ns = parse_as(item, key, value)?,
                "retries" => plan.max_retries = parse_as(item, key, value)?,
                "backoff_ns" => plan.backoff_ns = parse_as(item, key, value)?,
                "ecc" => plan.ecc = parse_as(item, key, value)?,
                "hang_us" => plan.hang_period_us = parse_as(item, key, value)?,
                "watchdog_us" => plan.watchdog_us = parse_as(item, key, value)?,
                "fab_crc" => plan.fabric_corrupt = parse_as(item, key, value)?,
                "flap_us" => plan.flap_period_us = parse_as(item, key, value)?,
                "flap_down_us" => plan.flap_down_us = parse_as(item, key, value)?,
                "squeeze" => plan.squeeze = parse_as(item, key, value)?,
                "crash_us" => plan.crash_period_us = parse_as(item, key, value)?,
                "poison" => plan.host_poison = parse_as(item, key, value)?,
                "fw" => plan.fw_fault = parse_as(item, key, value)?,
                "stall_alpha" => plan.stall_alpha = parse_as(item, key, value)?,
                _ => return Err(format!("'{item}': unknown key '{key}'")),
            }
        }
        for (name, p) in [
            ("crc", plan.link_corrupt),
            ("trunc", plan.link_truncate),
            ("dma", plan.dma_error),
            ("stall", plan.dma_stall),
            ("ecc", plan.ecc),
            ("fab_crc", plan.fabric_corrupt),
            ("squeeze", plan.squeeze),
            ("poison", plan.host_poison),
            ("fw", plan.fw_fault),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name}={p}: probability must be in [0, 1]"));
            }
        }
        if plan.stall_alpha < 0.0 {
            return Err(format!(
                "stall_alpha={}: shape must be >= 0",
                plan.stall_alpha
            ));
        }
        Ok(plan)
    }

    /// The spec string that re-parses to this plan (results metadata).
    pub fn spec(&self) -> String {
        format!(
            "seed={},crc={},trunc={},dma={},stall={},stall_ns={},retries={},\
             backoff_ns={},ecc={},hang_us={},watchdog_us={},fab_crc={},\
             flap_us={},flap_down_us={},squeeze={},crash_us={},poison={},\
             fw={},stall_alpha={}",
            self.seed,
            self.link_corrupt,
            self.link_truncate,
            self.dma_error,
            self.dma_stall,
            self.stall_ns,
            self.max_retries,
            self.backoff_ns,
            self.ecc,
            self.hang_period_us,
            self.watchdog_us,
            self.fabric_corrupt,
            self.flap_period_us,
            self.flap_down_us,
            self.squeeze,
            self.crash_period_us,
            self.host_poison,
            self.fw_fault,
            self.stall_alpha
        )
    }

    /// Whether every fault class is disabled — an all-zeros plan. Armed
    /// plumbing treats such a plan exactly like no plan at all (the
    /// zero-rate fast path): no site state is built, no draws happen,
    /// and the hot loops never branch on fault state.
    pub fn is_noop(&self) -> bool {
        self.link_corrupt == 0.0
            && self.link_truncate == 0.0
            && self.dma_error == 0.0
            && self.dma_stall == 0.0
            && self.ecc == 0.0
            && self.hang_period_us == 0
            && self.fabric_corrupt == 0.0
            && self.flap_period_us == 0
            && self.squeeze == 0.0
            && self.crash_period_us == 0
            && self.host_poison == 0.0
            && self.fw_fault == 0.0
    }

    /// The per-NIC plan a fleet hands to NIC `nic`: same policy, but a
    /// seed derived through [`SITE_NIC_PLAN_BASE`] so the internal fault
    /// streams of different NICs never correlate. Derived at fleet build
    /// time, so it is invariant across shard counts and dispatch modes.
    pub fn derive_nic(&self, nic: u64) -> FaultPlan {
        let mut rng = XorShift64::for_site(self.seed, SITE_NIC_PLAN_BASE + nic);
        FaultPlan {
            seed: rng.next_u64(),
            ..*self
        }
    }

    /// First crash onset for `nic`: one full period plus a seeded jitter
    /// within a second period, so crashes across the fleet de-phase.
    /// `None` when crash injection is disabled.
    pub fn crash_onset(&self, nic: u64) -> Option<Ps> {
        if self.crash_period_us == 0 {
            return None;
        }
        let period = Ps::from_us(self.crash_period_us);
        let mut rng = XorShift64::for_site(self.seed, SITE_NIC_CRASH_BASE + nic);
        Some(period + Ps(rng.below(period.0.max(1))))
    }
}

/// Injection and recovery counters, aggregated by `NicSystem` into
/// `RunStats` (and from there into the `nicsim-exp/v1` results JSON)
/// whenever a [`FaultPlan`] is configured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ErrorStats {
    /// Frames bit-corrupted on the inbound link.
    pub link_corrupt_injected: u64,
    /// Frames truncated on the inbound link.
    pub link_truncate_injected: u64,
    /// Frames the MAC RX CRC32 check caught and dropped (an error
    /// descriptor was published instead of the payload).
    pub crc_dropped: u64,
    /// Transient DMA completion errors injected (counts every failed
    /// attempt, including retries of the same command).
    pub dma_transient_errors: u64,
    /// DMA commands that eventually succeeded through retry.
    pub dma_retries_ok: u64,
    /// DMA commands aborted after exhausting retries (frame abort with
    /// ring cleanup).
    pub dma_aborts: u64,
    /// Bounded PCI stalls injected.
    pub pci_stalls: u64,
    /// Correctable single-bit ECC events in the frame memory.
    pub ecc_corrections: u64,
    /// Stuck-assist hangs that took effect (the unit had work pending).
    pub assist_hangs: u64,
    /// Watchdog resets of stuck assists.
    pub watchdog_resets: u64,
    /// Error return descriptors the host driver consumed and recycled.
    pub rx_error_returns: u64,
    /// Aborted transmit frames the host driver accounted and re-posted.
    pub tx_retries: u64,
    /// Frame-bus read completions that arrived without data and were
    /// recovered as aborted transfers.
    pub fm_short_reads: u64,
    /// Payload bytes poisoned in host memory by a DMA write (caught by
    /// driver frame validation as `rx_corrupt`).
    pub host_poison_injected: u64,
    /// Firmware instruction faults injected (handler aborted, core
    /// restarted the dispatch scan).
    pub fw_instr_faults: u64,
    /// Whole-NIC crash/reset cycles the fleet watchdog performed.
    pub nic_resets: u64,
    /// In-flight frames discarded by NIC resets (driver-posted frames
    /// not yet completed, plus pending RX at the dead port).
    pub nic_reset_lost_frames: u64,
    /// Frames the driver retransmitted in reliable mode (timeout with
    /// exponential backoff).
    pub tx_retransmits: u64,
    /// Duplicate deliveries the reliable-mode receiver suppressed.
    pub rx_duplicates: u64,
}

impl ErrorStats {
    /// Total injected faults (not recoveries).
    pub fn injected(&self) -> u64 {
        self.link_corrupt_injected
            + self.link_truncate_injected
            + self.dma_transient_errors
            + self.pci_stalls
            + self.ecc_corrections
            + self.assist_hangs
            + self.host_poison_injected
            + self.fw_instr_faults
    }

    /// The stable `(name, value)` rows appended to `RunStats::summary()`.
    pub fn summary(&self) -> [(&'static str, u64); 19] {
        [
            ("err_link_corrupt", self.link_corrupt_injected),
            ("err_link_truncate", self.link_truncate_injected),
            ("err_crc_dropped", self.crc_dropped),
            ("err_dma_transient", self.dma_transient_errors),
            ("err_dma_retried", self.dma_retries_ok),
            ("err_dma_aborts", self.dma_aborts),
            ("err_pci_stalls", self.pci_stalls),
            ("err_ecc", self.ecc_corrections),
            ("err_assist_hangs", self.assist_hangs),
            ("err_watchdog_resets", self.watchdog_resets),
            ("err_rx_error_returns", self.rx_error_returns),
            ("err_tx_retries", self.tx_retries),
            ("err_fm_short_reads", self.fm_short_reads),
            ("err_host_poison", self.host_poison_injected),
            ("err_fw_instr_faults", self.fw_instr_faults),
            ("err_nic_resets", self.nic_resets),
            ("err_nic_reset_lost", self.nic_reset_lost_frames),
            ("err_tx_retransmits", self.tx_retransmits),
            ("err_rx_duplicates", self.rx_duplicates),
        ]
    }

    /// Fold another NIC's counters into this one — the fleet path to an
    /// aggregated `err_*` table, mirroring `FrameTracker::merge`.
    pub fn merge(&mut self, other: &ErrorStats) {
        self.link_corrupt_injected += other.link_corrupt_injected;
        self.link_truncate_injected += other.link_truncate_injected;
        self.crc_dropped += other.crc_dropped;
        self.dma_transient_errors += other.dma_transient_errors;
        self.dma_retries_ok += other.dma_retries_ok;
        self.dma_aborts += other.dma_aborts;
        self.pci_stalls += other.pci_stalls;
        self.ecc_corrections += other.ecc_corrections;
        self.assist_hangs += other.assist_hangs;
        self.watchdog_resets += other.watchdog_resets;
        self.rx_error_returns += other.rx_error_returns;
        self.tx_retries += other.tx_retries;
        self.fm_short_reads += other.fm_short_reads;
        self.host_poison_injected += other.host_poison_injected;
        self.fw_instr_faults += other.fw_instr_faults;
        self.nic_resets += other.nic_resets;
        self.nic_reset_lost_frames += other.nic_reset_lost_frames;
        self.tx_retransmits += other.tx_retransmits;
        self.rx_duplicates += other.rx_duplicates;
    }
}

/// What the link decided to do to one generated frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// Flip one bit somewhere in the frame body.
    Corrupt,
    /// Cut the frame short of its full length.
    Truncate,
}

/// Link-site state: the per-frame draw for bit corruption and
/// truncation. The mechanism (CRC stamping, the actual mutation) lives
/// in `nicsim-net`; this is only the policy stream and its counters.
#[derive(Debug, Clone)]
pub struct LinkFaults {
    rng: XorShift64,
    p_corrupt: f64,
    p_truncate: f64,
    /// Frames corrupted so far.
    pub injected_corrupt: u64,
    /// Frames truncated so far.
    pub injected_truncate: u64,
}

impl LinkFaults {
    /// Site state under `plan`.
    pub fn new(plan: &FaultPlan) -> LinkFaults {
        LinkFaults {
            rng: XorShift64::for_site(plan.seed, SITE_LINK),
            p_corrupt: plan.link_corrupt,
            p_truncate: plan.link_truncate,
            injected_corrupt: 0,
            injected_truncate: 0,
        }
    }

    /// Draw the fate of the next frame. Consumes exactly two Bernoulli
    /// draws per frame regardless of outcome, so enabling one class
    /// never shifts the other's stream.
    pub fn draw(&mut self) -> Option<LinkFault> {
        let corrupt = self.rng.chance(self.p_corrupt);
        let truncate = self.rng.chance(self.p_truncate);
        if corrupt {
            self.injected_corrupt += 1;
            Some(LinkFault::Corrupt)
        } else if truncate {
            self.injected_truncate += 1;
            Some(LinkFault::Truncate)
        } else {
            None
        }
    }

    /// A raw draw for picking the corruption position / truncated length.
    pub fn pick(&mut self, n: u64) -> u64 {
        self.rng.below(n.max(1))
    }
}

/// The fate of one payload DMA command under the fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmdOutcome {
    /// Extra delay (stall + retry backoff) before the command resolves.
    pub delay: Ps,
    /// Failed attempts before resolution (each one a transient error).
    pub attempts: u32,
    /// Whether a PCI stall was injected.
    pub stalled: bool,
    /// Whether the command ultimately aborts instead of transferring.
    pub abort: bool,
}

impl CmdOutcome {
    /// A clean pass-through outcome.
    pub const CLEAN: CmdOutcome = CmdOutcome {
        delay: Ps::ZERO,
        attempts: 0,
        stalled: false,
        abort: false,
    };
}

/// DMA-engine site state: transient errors with retry/backoff/abort,
/// PCI stalls, and stuck-unit hangs, plus the engine's fault counters.
#[derive(Debug, Clone)]
pub struct DmaFaults {
    rng: XorShift64,
    p_error: f64,
    p_stall: f64,
    p_poison: f64,
    stall: Ps,
    stall_alpha: f64,
    max_retries: u32,
    backoff: Ps,
    hang_period: Ps,
    watchdog: Ps,
    /// Next scheduled hang onset (`Ps::MAX` when hangs are disabled).
    next_hang_at: Ps,
    /// The unit is currently wedged (cleared by a watchdog reset).
    pub hung: bool,
    /// When the unit was first observed stuck (hung with work pending).
    pub stuck_since: Option<Ps>,
    /// Transient errors injected (failed attempts).
    pub transient_errors: u64,
    /// Commands recovered through retry.
    pub retries_ok: u64,
    /// Commands aborted after exhausting retries.
    pub aborts: u64,
    /// PCI stalls injected.
    pub stalls: u64,
    /// Hangs that took effect (counted at first stuck observation).
    pub hangs: u64,
    /// Watchdog resets of this unit.
    pub watchdog_resets: u64,
    /// Host-memory bytes poisoned on DMA-write completion.
    pub poisons: u64,
}

impl DmaFaults {
    /// Site state for `site` (one of [`SITE_DMA_READ`] /
    /// [`SITE_DMA_WRITE`]) under `plan`.
    pub fn new(plan: &FaultPlan, site: u64) -> DmaFaults {
        let hang_period = if plan.hang_period_us == 0 {
            Ps::MAX
        } else {
            Ps::from_us(plan.hang_period_us)
        };
        DmaFaults {
            rng: XorShift64::for_site(plan.seed, site),
            p_error: plan.dma_error,
            p_stall: plan.dma_stall,
            p_poison: plan.host_poison,
            stall: Ps(plan.stall_ns * 1000),
            stall_alpha: plan.stall_alpha,
            max_retries: plan.max_retries,
            backoff: Ps(plan.backoff_ns * 1000),
            hang_period,
            watchdog: Ps::from_us(plan.watchdog_us.max(1)),
            next_hang_at: hang_period,
            hung: false,
            stuck_since: None,
            transient_errors: 0,
            retries_ok: 0,
            aborts: 0,
            stalls: 0,
            hangs: 0,
            watchdog_resets: 0,
            poisons: 0,
        }
    }

    /// Rebase the hang schedule onto an absolute restart time: a freshly
    /// built unit schedules its first hang one period after `at` instead
    /// of one period after time zero (NIC reset lifecycle).
    pub fn rebase(&mut self, at: Ps) {
        if self.next_hang_at != Ps::MAX {
            self.next_hang_at = at + self.hang_period;
        }
    }

    /// Decide the fate of one payload command: an optional stall, then a
    /// geometric chain of failed attempts, each backed off exponentially.
    /// The accumulated delay is served before the command executes (or
    /// aborts); counters update immediately.
    pub fn draw_command(&mut self) -> CmdOutcome {
        let stalled = self.rng.chance(self.p_stall);
        let mut delay = if stalled {
            self.stalls += 1;
            if self.stall_alpha > 0.0 {
                // Bounded-Pareto tail: the draw happens only when a
                // stall fired AND the shape is nonzero, so legacy plans
                // (alpha = 0) replay their exact streams.
                let mult = self
                    .rng
                    .unit_open()
                    .powf(-1.0 / self.stall_alpha)
                    .min(100.0);
                Ps((self.stall.0 as f64 * mult) as u64)
            } else {
                self.stall
            }
        } else {
            Ps::ZERO
        };
        let mut attempts = 0u32;
        while attempts <= self.max_retries && self.rng.chance(self.p_error) {
            delay += Ps(self.backoff.0 << attempts.min(16));
            attempts += 1;
        }
        let abort = attempts > self.max_retries;
        self.transient_errors += attempts as u64;
        if abort {
            self.aborts += 1;
        } else if attempts > 0 {
            self.retries_ok += 1;
        }
        CmdOutcome {
            delay,
            attempts,
            stalled,
            abort,
        }
    }

    /// Whether any fault class is live at this site (used to skip the
    /// draw entirely for control-plane commands).
    pub fn commands_faulty(&self) -> bool {
        self.p_error > 0.0 || self.p_stall > 0.0
    }

    /// Advance the hang schedule: returns `true` while the unit is
    /// wedged. Onset is a pure function of simulated time, so dense and
    /// event-driven kernels agree regardless of cycle skipping.
    pub fn hang_active(&mut self, now: Ps) -> bool {
        if !self.hung && now >= self.next_hang_at {
            self.hung = true;
        }
        self.hung
    }

    /// Record a stuck observation (hung with work pending) at `now`;
    /// returns `true` when the watchdog deadline has expired and the
    /// unit must be reset. The first stuck observation counts the hang.
    pub fn observe_stuck(&mut self, now: Ps) -> bool {
        match self.stuck_since {
            None => {
                self.stuck_since = Some(now);
                self.hangs += 1;
                false
            }
            Some(since) => now >= since + self.watchdog,
        }
    }

    /// Watchdog reset: clear the wedge, reschedule the next hang, count
    /// the recovery.
    pub fn watchdog_reset(&mut self, now: Ps) {
        self.hung = false;
        self.stuck_since = None;
        self.watchdog_resets += 1;
        self.next_hang_at = if self.hang_period == Ps::MAX {
            Ps::MAX
        } else {
            now + self.hang_period
        };
    }

    /// Clear the stuck observation (the unit made progress or drained).
    pub fn clear_stuck(&mut self) {
        self.stuck_since = None;
    }

    /// Draw the fate of one DMA-write payload landing in host memory:
    /// `Some(offset)` poisons the byte at `offset` of the buffer. Draws
    /// only when host poisoning is enabled, so plans without it replay
    /// their exact command streams.
    pub fn draw_poison(&mut self, len: usize) -> Option<usize> {
        if self.p_poison <= 0.0 || len == 0 {
            return None;
        }
        if self.rng.chance(self.p_poison) {
            self.poisons += 1;
            Some(self.rng.below(len as u64) as usize)
        } else {
            None
        }
    }
}

/// Frame-memory site state: correctable single-bit ECC events on read
/// bursts, each costing a fixed correction latency.
#[derive(Debug, Clone)]
pub struct EccFaults {
    rng: XorShift64,
    p: f64,
    /// Extra service latency charged per corrected burst.
    pub extra: Ps,
    /// Corrections so far.
    pub corrections: u64,
}

impl EccFaults {
    /// Site state under `plan`. The correction penalty is fixed at 8 ns
    /// (a resync + scrub write at GDDR timescales).
    pub fn new(plan: &FaultPlan) -> EccFaults {
        EccFaults {
            rng: XorShift64::for_site(plan.seed, SITE_ECC),
            p: plan.ecc,
            extra: Ps(8_000),
            corrections: 0,
        }
    }

    /// Draw one read burst: `true` when a single-bit error was injected
    /// (and corrected).
    pub fn draw(&mut self) -> bool {
        if self.rng.chance(self.p) {
            self.corrections += 1;
            true
        } else {
            false
        }
    }
}

/// Fabric-site state for a fleet: per-source-link corruption streams,
/// time-pure link flap windows, and a fabric-wide port-buffer squeeze
/// stream. The mechanism (FCS stamping, the bit flip, the drop and its
/// digest fold) lives in `nicsim-net::Fabric`; this is only the policy.
///
/// Determinism: every decision is either a pure function of simulated
/// time (flaps) or a draw on a stream indexed by the *source* NIC of the
/// offered frame — and the fleet's epoch engine offers frames to the
/// fabric in a sorted, shard-invariant order, so the streams advance
/// identically for every shard count and dispatch mode.
#[derive(Debug, Clone)]
pub struct FabricFaults {
    links: Vec<XorShift64>,
    flap_phase: Vec<Ps>,
    squeeze_rng: XorShift64,
    p_corrupt: f64,
    p_squeeze: f64,
    flap_period: Ps,
    flap_down: Ps,
    /// Whether the plan arms *any* fault class, fabric-side or not. An
    /// armed plan arms every receiver's CRC check, so the fabric must
    /// stamp a valid FCS on each frame it carries even when no
    /// fabric-side class can fire (e.g. a crash-only plan) — otherwise
    /// every delivery would be dropped as corrupt.
    plan_armed: bool,
}

impl FabricFaults {
    /// Site state for a fabric with `n_links` source links under `plan`
    /// (the *fleet* plan seed, not a per-NIC derived one).
    pub fn new(plan: &FaultPlan, n_links: usize) -> FabricFaults {
        let flap_period = if plan.flap_period_us == 0 {
            Ps::MAX
        } else {
            Ps::from_us(plan.flap_period_us)
        };
        let flap_phase = (0..n_links)
            .map(|i| {
                if flap_period == Ps::MAX {
                    Ps::ZERO
                } else {
                    let mut r = XorShift64::for_site(plan.seed, SITE_FABRIC_FLAP_BASE + i as u64);
                    Ps(r.below(flap_period.0.max(1)))
                }
            })
            .collect();
        FabricFaults {
            links: (0..n_links)
                .map(|i| XorShift64::for_site(plan.seed, SITE_FABRIC_LINK_BASE + i as u64))
                .collect(),
            flap_phase,
            squeeze_rng: XorShift64::for_site(plan.seed, SITE_FABRIC_SQUEEZE),
            p_corrupt: plan.fabric_corrupt,
            p_squeeze: plan.squeeze,
            flap_period,
            flap_down: Ps::from_us(plan.flap_down_us),
            plan_armed: !plan.is_noop(),
        }
    }

    /// Whether source link `src` is flapped down at time `t` — a pure
    /// function of simulated time (each link's phase was seeded at
    /// construction), so cycle skipping and sharding cannot shift it.
    pub fn link_down(&self, src: usize, t: Ps) -> bool {
        if self.flap_period == Ps::MAX {
            return false;
        }
        let pos = (t.0 + self.flap_phase[src].0) % self.flap_period.0;
        pos < self.flap_down.0.min(self.flap_period.0)
    }

    /// Draw the fate of one frame offered by `src`: `Some(bit)` flips
    /// that bit of the frame body. One Bernoulli draw per offer (plus a
    /// position draw on a hit), on the per-source link stream.
    pub fn draw_corrupt(&mut self, src: usize, body_bits: u64) -> Option<u64> {
        if self.links[src].chance(self.p_corrupt) {
            Some(self.links[src].below(body_bits.max(1)))
        } else {
            None
        }
    }

    /// Draw one admission at the destination port: `true` squeezes the
    /// effective buffer capacity for this frame.
    pub fn draw_squeeze(&mut self) -> bool {
        self.squeeze_rng.chance(self.p_squeeze)
    }

    /// Whether the fabric must enter its fault path at all: true when
    /// the plan arms *anything* (the receivers' CRC checks are then
    /// armed too, so every carried frame needs an FCS stamp), false for
    /// an all-zeros plan (the fabric then stays bit-identical to a
    /// clean one — no stamping, no draws).
    pub fn armed(&self) -> bool {
        self.plan_armed
    }
}

/// Per-core firmware-site state: seeded instruction faults at handler
/// dispatch. The mechanism (aborting the handler, charging the restart
/// penalty) lives in `nicsim-firmware`; this is only the stream.
#[derive(Debug, Clone)]
pub struct FwFaults {
    rng: XorShift64,
    p: f64,
    /// Instruction faults injected on this core.
    pub injected: u64,
}

impl FwFaults {
    /// Site state for `core_id` under `plan`.
    pub fn new(plan: &FaultPlan, core_id: usize) -> FwFaults {
        FwFaults {
            rng: XorShift64::for_site(plan.seed, SITE_FW_BASE + core_id as u64),
            p: plan.fw_fault,
            injected: 0,
        }
    }

    /// Draw one handler dispatch: `true` aborts the handler before it
    /// runs and the core restarts its scan.
    pub fn fires(&mut self) -> bool {
        if self.p <= 0.0 {
            return false;
        }
        if self.rng.chance(self.p) {
            self.injected += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_streams_are_independent_and_reproducible() {
        let mut a = XorShift64::for_site(7, SITE_LINK);
        let mut b = XorShift64::for_site(7, SITE_LINK);
        let mut c = XorShift64::for_site(7, SITE_DMA_READ);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y, "same (seed, site) must replay");
        assert_ne!(x, z, "different sites must not correlate");
    }

    #[test]
    fn chance_respects_extremes() {
        let mut r = XorShift64::for_site(3, SITE_ECC);
        for _ in 0..64 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn chance_tracks_probability_roughly() {
        let mut r = XorShift64::for_site(11, SITE_LINK);
        let hits = (0..10_000).filter(|_| r.chance(0.1)).count();
        assert!((800..1200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn parse_roundtrips_through_spec() {
        let plan =
            FaultPlan::parse("seed=9,crc=0.001,dma=0.0002,hang_us=500,watchdog_us=80").unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.link_corrupt, 0.001);
        assert_eq!(plan.hang_period_us, 500);
        assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan);
    }

    #[test]
    fn parse_rate_shorthand_and_errors() {
        let plan = FaultPlan::parse("seed=2,rate=1e-3").unwrap();
        assert_eq!(plan.link_corrupt, 1e-3);
        assert_eq!(plan.dma_error, 1e-3);
        assert_eq!(plan.ecc, 1e-3);
        assert_eq!(plan.link_truncate, 1e-4);
        assert_eq!(plan.seed, 2);
        assert!(FaultPlan::parse("bogus").is_err());
        assert!(FaultPlan::parse("crc=2.0").is_err());
        assert!(FaultPlan::parse("martians=1").is_err());
    }

    #[test]
    fn link_draw_counts_and_replays() {
        let plan = FaultPlan {
            link_corrupt: 0.5,
            link_truncate: 0.5,
            ..FaultPlan::default()
        };
        let mut a = LinkFaults::new(&plan);
        let mut b = LinkFaults::new(&plan);
        let fa: Vec<_> = (0..100).map(|_| a.draw()).collect();
        let fb: Vec<_> = (0..100).map(|_| b.draw()).collect();
        assert_eq!(fa, fb);
        assert!(a.injected_corrupt > 0);
        assert!(a.injected_truncate > 0);
    }

    #[test]
    fn dma_outcomes_cover_retry_and_abort() {
        let plan = FaultPlan {
            dma_error: 0.9,
            dma_stall: 0.2,
            max_retries: 2,
            ..FaultPlan::default()
        };
        let mut d = DmaFaults::new(&plan, SITE_DMA_READ);
        let outcomes: Vec<_> = (0..200).map(|_| d.draw_command()).collect();
        assert!(outcomes.iter().any(|o| o.abort));
        assert!(outcomes.iter().any(|o| o.attempts > 0 && !o.abort));
        assert!(outcomes.iter().any(|o| o.stalled));
        assert_eq!(
            d.transient_errors,
            outcomes.iter().map(|o| o.attempts as u64).sum::<u64>()
        );
        assert!(d.aborts > 0 && d.retries_ok > 0 && d.stalls > 0);
        // Abort only after exhausting max_retries attempts.
        for o in &outcomes {
            if o.abort {
                assert_eq!(o.attempts, plan.max_retries + 1);
            }
        }
    }

    #[test]
    fn hang_onset_is_time_pure_and_watchdog_resets() {
        let plan = FaultPlan {
            hang_period_us: 10,
            watchdog_us: 5,
            ..FaultPlan::default()
        };
        let mut d = DmaFaults::new(&plan, SITE_DMA_WRITE);
        assert!(!d.hang_active(Ps::from_us(9)));
        assert!(d.hang_active(Ps::from_us(10)));
        // Skipping straight past the onset gives the same answer.
        let mut e = DmaFaults::new(&plan, SITE_DMA_WRITE);
        assert!(e.hang_active(Ps::from_us(25)));
        // Stuck observations arm the watchdog after the timeout.
        assert!(!d.observe_stuck(Ps::from_us(10)));
        assert!(!d.observe_stuck(Ps::from_us(12)));
        assert!(d.observe_stuck(Ps::from_us(15)));
        d.watchdog_reset(Ps::from_us(15));
        assert!(!d.hung);
        assert_eq!(d.watchdog_resets, 1);
        assert_eq!(d.hangs, 1);
        // The next hang is rescheduled relative to the reset.
        assert!(!d.hang_active(Ps::from_us(24)));
        assert!(d.hang_active(Ps::from_us(25)));
    }

    #[test]
    fn ecc_draws_count() {
        let plan = FaultPlan {
            ecc: 1.0,
            ..FaultPlan::default()
        };
        let mut e = EccFaults::new(&plan);
        assert!(e.draw());
        assert_eq!(e.corrections, 1);
    }

    #[test]
    fn error_stats_summary_is_stable() {
        let s = ErrorStats {
            crc_dropped: 3,
            ..ErrorStats::default()
        };
        let rows = s.summary();
        assert_eq!(rows[2], ("err_crc_dropped", 3));
        assert_eq!(rows.len(), 19);
        assert_eq!(rows[15].0, "err_nic_resets");
        assert_eq!(rows[17].0, "err_tx_retransmits");
        assert_eq!(s.injected(), 0);
    }

    #[test]
    fn error_stats_merge_sums_every_counter() {
        let mut a = ErrorStats::default();
        let mut b = ErrorStats::default();
        // Give every row a distinct nonzero value via the summary order.
        let fill = |s: &mut ErrorStats, base: u64| {
            s.link_corrupt_injected = base;
            s.link_truncate_injected = base + 1;
            s.crc_dropped = base + 2;
            s.dma_transient_errors = base + 3;
            s.dma_retries_ok = base + 4;
            s.dma_aborts = base + 5;
            s.pci_stalls = base + 6;
            s.ecc_corrections = base + 7;
            s.assist_hangs = base + 8;
            s.watchdog_resets = base + 9;
            s.rx_error_returns = base + 10;
            s.tx_retries = base + 11;
            s.fm_short_reads = base + 12;
            s.host_poison_injected = base + 13;
            s.fw_instr_faults = base + 14;
            s.nic_resets = base + 15;
            s.nic_reset_lost_frames = base + 16;
            s.tx_retransmits = base + 17;
            s.rx_duplicates = base + 18;
        };
        fill(&mut a, 100);
        fill(&mut b, 1000);
        a.merge(&b);
        for (i, (name, v)) in a.summary().iter().enumerate() {
            assert_eq!(*v, 1100 + 2 * i as u64, "{name}");
        }
    }

    #[test]
    fn noop_detection_tracks_every_class() {
        assert!(FaultPlan::default().is_noop());
        assert!(FaultPlan::with_rate(9, 0.0).is_noop());
        for set in [
            |p: &mut FaultPlan| p.link_corrupt = 1e-9,
            |p: &mut FaultPlan| p.link_truncate = 1e-9,
            |p: &mut FaultPlan| p.dma_error = 1e-9,
            |p: &mut FaultPlan| p.dma_stall = 1e-9,
            |p: &mut FaultPlan| p.ecc = 1e-9,
            |p: &mut FaultPlan| p.hang_period_us = 1,
            |p: &mut FaultPlan| p.fabric_corrupt = 1e-9,
            |p: &mut FaultPlan| p.flap_period_us = 1,
            |p: &mut FaultPlan| p.squeeze = 1e-9,
            |p: &mut FaultPlan| p.crash_period_us = 1,
            |p: &mut FaultPlan| p.host_poison = 1e-9,
            |p: &mut FaultPlan| p.fw_fault = 1e-9,
        ] {
            let mut p = FaultPlan::default();
            set(&mut p);
            assert!(!p.is_noop(), "{p:?}");
        }
    }

    #[test]
    fn spec_roundtrip_property_over_random_plans() {
        // xorshift-driven property test: random plans survive a
        // spec() -> parse() round trip bit-exactly (f64 Display is the
        // shortest round-trippable form).
        let mut r = XorShift64::for_site(0xfee1_600d, 99);
        for _ in 0..200 {
            let prob = |r: &mut XorShift64| r.below(1001) as f64 / 1000.0;
            let plan = FaultPlan {
                seed: r.next_u64(),
                link_corrupt: prob(&mut r),
                link_truncate: prob(&mut r),
                dma_error: prob(&mut r),
                dma_stall: prob(&mut r),
                stall_ns: r.below(10_000),
                max_retries: r.below(16) as u32,
                backoff_ns: r.below(10_000),
                ecc: prob(&mut r),
                hang_period_us: r.below(1000),
                watchdog_us: r.below(1000),
                fabric_corrupt: prob(&mut r),
                flap_period_us: r.below(1000),
                flap_down_us: r.below(100),
                squeeze: prob(&mut r),
                crash_period_us: r.below(1000),
                host_poison: prob(&mut r),
                fw_fault: prob(&mut r),
                stall_alpha: r.below(40) as f64 / 10.0,
            };
            let spec = plan.spec();
            assert_eq!(FaultPlan::parse(&spec).unwrap(), plan, "{spec}");
        }
    }

    #[test]
    fn parse_rejects_bad_new_keys() {
        assert!(FaultPlan::parse("fab_crc=1.5").is_err());
        assert!(FaultPlan::parse("squeeze=-0.1").is_err());
        assert!(FaultPlan::parse("poison=2").is_err());
        assert!(FaultPlan::parse("fw=nan").is_err());
        assert!(FaultPlan::parse("stall_alpha=-1").is_err());
        assert!(FaultPlan::parse("flap_us=bogus").is_err());
        let p = FaultPlan::parse("fab_crc=0.01,flap_us=200,squeeze=0.05,crash_us=400").unwrap();
        assert_eq!(p.fabric_corrupt, 0.01);
        assert_eq!(p.flap_period_us, 200);
        assert_eq!(p.squeeze, 0.05);
        assert_eq!(p.crash_period_us, 400);
    }

    #[test]
    fn derived_nic_plans_decorrelate_but_replay() {
        let plan = FaultPlan::with_rate(7, 1e-3);
        let a = plan.derive_nic(0);
        let b = plan.derive_nic(1);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a, plan.derive_nic(0), "derivation must replay");
        assert_eq!(a.dma_error, plan.dma_error, "policy fields carry over");
    }

    #[test]
    fn crash_onsets_are_seeded_and_bounded() {
        let plan = FaultPlan {
            crash_period_us: 100,
            ..FaultPlan::default()
        };
        assert_eq!(FaultPlan::default().crash_onset(0), None);
        let a = plan.crash_onset(0).unwrap();
        let b = plan.crash_onset(1).unwrap();
        assert_eq!(a, plan.crash_onset(0).unwrap());
        assert_ne!(a, b);
        for t in [a, b] {
            assert!(t >= Ps::from_us(100) && t < Ps::from_us(200), "{t:?}");
        }
    }

    #[test]
    fn fabric_faults_flap_windows_are_time_pure() {
        let plan = FaultPlan {
            flap_period_us: 100,
            flap_down_us: 10,
            ..FaultPlan::default()
        };
        let f = FabricFaults::new(&plan, 4);
        assert!(f.armed());
        // Sample two full periods: each link must be down for exactly
        // flap_down out of every flap_period microseconds, and repeated
        // queries at the same time must agree (pure function of time).
        for src in 0..4 {
            let down = (0..200)
                .filter(|us| f.link_down(src, Ps::from_us(*us)))
                .count();
            assert_eq!(down, 20, "link {src}");
            assert_eq!(
                f.link_down(src, Ps::from_us(42)),
                f.link_down(src, Ps::from_us(42))
            );
        }
        // Phases differ across links.
        let first_down = |src: usize| (0..200).find(|us| f.link_down(src, Ps::from_us(*us)));
        assert_ne!(first_down(0), first_down(1));
    }

    #[test]
    fn fabric_corrupt_and_squeeze_draws_replay() {
        let plan = FaultPlan {
            fabric_corrupt: 0.5,
            squeeze: 0.5,
            ..FaultPlan::default()
        };
        let mut a = FabricFaults::new(&plan, 2);
        let mut b = FabricFaults::new(&plan, 2);
        let da: Vec<_> = (0..50)
            .map(|i| (a.draw_corrupt(i % 2, 8000), a.draw_squeeze()))
            .collect();
        let db: Vec<_> = (0..50)
            .map(|i| (b.draw_corrupt(i % 2, 8000), b.draw_squeeze()))
            .collect();
        assert_eq!(da, db);
        assert!(da.iter().any(|(c, _)| c.is_some()));
        assert!(da.iter().any(|(_, s)| *s));
        assert!(da.iter().all(|(c, _)| c.is_none_or(|bit| bit < 8000)));
        assert!(!FabricFaults::new(&FaultPlan::default(), 2).armed());
    }

    #[test]
    fn fw_faults_fire_and_count() {
        let mut f = FwFaults::new(
            &FaultPlan {
                fw_fault: 1.0,
                ..FaultPlan::default()
            },
            3,
        );
        assert!(f.fires());
        assert_eq!(f.injected, 1);
        let mut off = FwFaults::new(&FaultPlan::default(), 3);
        assert!(!off.fires());
        assert_eq!(off.injected, 0);
    }

    #[test]
    fn pareto_stalls_are_bounded_and_exceed_the_base() {
        let plan = FaultPlan {
            dma_stall: 1.0,
            stall_ns: 200,
            stall_alpha: 1.2,
            ..FaultPlan::default()
        };
        let mut d = DmaFaults::new(&plan, SITE_DMA_READ);
        let base = Ps(200 * 1000);
        let cap = Ps(base.0 * 100);
        let mut saw_tail = false;
        for _ in 0..500 {
            let o = d.draw_command();
            assert!(o.stalled);
            assert!(o.delay >= base && o.delay <= cap, "{:?}", o.delay);
            if o.delay > Ps(base.0 * 2) {
                saw_tail = true;
            }
        }
        assert!(saw_tail, "alpha=1.2 should produce a heavy tail");
        // alpha = 0 keeps the legacy fixed stall.
        let mut fixed = DmaFaults::new(
            &FaultPlan {
                dma_stall: 1.0,
                stall_ns: 200,
                ..FaultPlan::default()
            },
            SITE_DMA_READ,
        );
        assert_eq!(fixed.draw_command().delay, base);
    }

    #[test]
    fn poison_draws_only_when_enabled() {
        let mut off = DmaFaults::new(&FaultPlan::default(), SITE_DMA_WRITE);
        let before = off.rng;
        assert_eq!(off.draw_poison(1500), None);
        assert_eq!(off.rng, before, "disabled poison must not consume draws");
        let mut on = DmaFaults::new(
            &FaultPlan {
                host_poison: 1.0,
                ..FaultPlan::default()
            },
            SITE_DMA_WRITE,
        );
        let hit = on.draw_poison(1500).unwrap();
        assert!(hit < 1500);
        assert_eq!(on.poisons, 1);
        assert_eq!(on.draw_poison(0), None);
    }

    #[test]
    fn rebase_shifts_the_hang_schedule() {
        let plan = FaultPlan {
            hang_period_us: 10,
            ..FaultPlan::default()
        };
        let mut d = DmaFaults::new(&plan, SITE_DMA_WRITE);
        d.rebase(Ps::from_us(100));
        assert!(!d.hang_active(Ps::from_us(109)));
        assert!(d.hang_active(Ps::from_us(110)));
        // Hangs disabled: rebase keeps them disabled.
        let mut off = DmaFaults::new(&FaultPlan::default(), SITE_DMA_WRITE);
        off.rebase(Ps::from_us(100));
        assert!(!off.hang_active(Ps::from_us(1_000_000)));
    }
}
