//! # nicsim-fault — the deterministic fault-injection plane
//!
//! The paper evaluates the NIC only under clean traffic; this crate adds
//! the unhappy paths a production 10 GbE controller must survive: CRC-bad
//! frames on the wire, transient DMA/PCI errors and stalls, single-bit
//! SDRAM ECC events, and wedged assist units. Everything is policy and
//! bookkeeping — the *mechanisms* (corrupting a frame, retrying a DMA,
//! resetting an assist) live at each layer's natural boundary in
//! `nicsim-net`, `nicsim-assists`, `nicsim-mem`, and `nicsim` core.
//!
//! ## Determinism contract
//!
//! A run is reproducible from `(seed, plan)`:
//!
//! * Every injection site owns an independent xorshift64* stream, derived
//!   from the plan seed and a fixed site id via splitmix64, so adding or
//!   removing draws at one site never perturbs another.
//! * Draws happen only at *event-shaped* points — a frame leaving the
//!   generator, a payload DMA command starting, a read burst being
//!   granted — which occur at identical simulated times in both the
//!   dense and event-driven kernels. No site ever draws per tick.
//! * Hang onset and watchdog deadlines are expressed in simulated time
//!   (`Ps`), never in executed-step counts, so cycle skipping cannot
//!   shift them.
//!
//! With no [`FaultPlan`] configured every site is `None`, no RNG exists,
//! and the simulator's behavior (and `RunStats`) is bit-identical to a
//! build without this crate wired in.

use nicsim_sim::Ps;

/// Site id for the link-level generator stream.
pub const SITE_LINK: u64 = 1;
/// Site id for the DMA read (host → NIC) engine stream.
pub const SITE_DMA_READ: u64 = 2;
/// Site id for the DMA write (NIC → host) engine stream.
pub const SITE_DMA_WRITE: u64 = 3;
/// Site id for the frame-memory ECC stream.
pub const SITE_ECC: u64 = 4;

/// splitmix64 — seeds the per-site streams from `seed ^ site`.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xorshift64* — the workspace's standard dependency-free PRNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// A stream seeded for `site` under the plan seed (never zero).
    pub fn for_site(seed: u64, site: u64) -> XorShift64 {
        let s = splitmix64(seed ^ site.wrapping_mul(0xa076_1d64_78bd_642f));
        XorShift64 {
            state: if s == 0 { 0x853c_49e6_748f_ea9b } else { s },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// One Bernoulli draw with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            // Still consume a draw so enabling a zero-rate fault class
            // does not shift the stream of the others at this site.
            self.next_u64();
            return false;
        }
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform draw in `[0, n)` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A complete, `Copy` fault schedule: per-event probabilities, retry and
/// watchdog policy, and the master seed. Configured through
/// `NicConfig::builder().faults(..)` or parsed from a `--faults` spec
/// (see [`FaultPlan::parse`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Master seed; each site derives its own stream from it.
    pub seed: u64,
    /// Per-frame probability of a single-bit corruption on the inbound
    /// link (caught by the MAC RX CRC32 check).
    pub link_corrupt: f64,
    /// Per-frame probability of frame truncation on the inbound link.
    pub link_truncate: f64,
    /// Per-payload-command probability of a transient DMA completion
    /// error (retried with exponential backoff, then aborted).
    pub dma_error: f64,
    /// Per-payload-command probability of a bounded PCI stall.
    pub dma_stall: f64,
    /// Duration of one PCI stall, nanoseconds.
    pub stall_ns: u64,
    /// Retry attempts before a failing DMA command is aborted.
    pub max_retries: u32,
    /// Base retry backoff, nanoseconds; attempt `n` waits
    /// `backoff_ns << n`.
    pub backoff_ns: u64,
    /// Per-read-burst probability of a correctable single-bit ECC event
    /// in the frame memory.
    pub ecc: f64,
    /// Microseconds between stuck-assist hangs on each DMA engine
    /// (0 disables hang injection). A hang persists until the watchdog
    /// resets the unit.
    pub hang_period_us: u64,
    /// Watchdog timeout, microseconds: how long an assist may sit stuck
    /// (hung with work pending) before `NicSystem` resets it.
    pub watchdog_us: u64,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 1,
            link_corrupt: 0.0,
            link_truncate: 0.0,
            dma_error: 0.0,
            dma_stall: 0.0,
            stall_ns: 200,
            max_retries: 4,
            backoff_ns: 100,
            ecc: 0.0,
            hang_period_us: 0,
            watchdog_us: 50,
        }
    }
}

impl FaultPlan {
    /// A plan applying `rate` uniformly to the per-event fault classes
    /// (link corruption, truncation at a tenth, DMA errors, stalls,
    /// ECC) — the axis the `fault_sweep` bench walks.
    pub fn with_rate(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            link_corrupt: rate,
            link_truncate: rate * 0.1,
            dma_error: rate,
            dma_stall: rate,
            ecc: rate,
            ..FaultPlan::default()
        }
    }

    /// Parse a `--faults` spec: a comma-separated `key=value` list.
    ///
    /// | key           | meaning                                    |
    /// |---------------|--------------------------------------------|
    /// | `seed`        | master seed (u64, default 1)               |
    /// | `rate`        | shorthand: sets `crc`, `dma`, `stall`, `ecc` to the value and `trunc` to a tenth |
    /// | `crc`         | per-frame link corruption probability      |
    /// | `trunc`       | per-frame link truncation probability      |
    /// | `dma`         | per-command transient DMA error probability|
    /// | `stall`       | per-command PCI stall probability          |
    /// | `stall_ns`    | stall duration (default 200)               |
    /// | `retries`     | DMA retry attempts before abort (default 4)|
    /// | `backoff_ns`  | base retry backoff (default 100)           |
    /// | `ecc`         | per-read-burst ECC event probability       |
    /// | `hang_us`     | hang injection period, 0 = off (default 0) |
    /// | `watchdog_us` | watchdog timeout (default 50)              |
    ///
    /// Example: `--faults seed=7,crc=1e-3,dma=1e-4,hang_us=500`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for item in spec.split(',').filter(|s| !s.trim().is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("'{item}': expected key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            fn parse_as<T: std::str::FromStr>(item: &str, key: &str, v: &str) -> Result<T, String> {
                v.parse()
                    .map_err(|_| format!("'{item}': bad value for {key}"))
            }
            match key {
                "seed" => plan.seed = parse_as(item, key, value)?,
                "rate" => {
                    let r: f64 = parse_as(item, key, value)?;
                    let seeded = plan.seed;
                    plan = FaultPlan {
                        stall_ns: plan.stall_ns,
                        max_retries: plan.max_retries,
                        backoff_ns: plan.backoff_ns,
                        hang_period_us: plan.hang_period_us,
                        watchdog_us: plan.watchdog_us,
                        ..FaultPlan::with_rate(seeded, r)
                    };
                }
                "crc" => plan.link_corrupt = parse_as(item, key, value)?,
                "trunc" => plan.link_truncate = parse_as(item, key, value)?,
                "dma" => plan.dma_error = parse_as(item, key, value)?,
                "stall" => plan.dma_stall = parse_as(item, key, value)?,
                "stall_ns" => plan.stall_ns = parse_as(item, key, value)?,
                "retries" => plan.max_retries = parse_as(item, key, value)?,
                "backoff_ns" => plan.backoff_ns = parse_as(item, key, value)?,
                "ecc" => plan.ecc = parse_as(item, key, value)?,
                "hang_us" => plan.hang_period_us = parse_as(item, key, value)?,
                "watchdog_us" => plan.watchdog_us = parse_as(item, key, value)?,
                _ => return Err(format!("'{item}': unknown key '{key}'")),
            }
        }
        for (name, p) in [
            ("crc", plan.link_corrupt),
            ("trunc", plan.link_truncate),
            ("dma", plan.dma_error),
            ("stall", plan.dma_stall),
            ("ecc", plan.ecc),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name}={p}: probability must be in [0, 1]"));
            }
        }
        Ok(plan)
    }

    /// The spec string that re-parses to this plan (results metadata).
    pub fn spec(&self) -> String {
        format!(
            "seed={},crc={},trunc={},dma={},stall={},stall_ns={},retries={},\
             backoff_ns={},ecc={},hang_us={},watchdog_us={}",
            self.seed,
            self.link_corrupt,
            self.link_truncate,
            self.dma_error,
            self.dma_stall,
            self.stall_ns,
            self.max_retries,
            self.backoff_ns,
            self.ecc,
            self.hang_period_us,
            self.watchdog_us
        )
    }
}

/// Injection and recovery counters, aggregated by `NicSystem` into
/// `RunStats` (and from there into the `nicsim-exp/v1` results JSON)
/// whenever a [`FaultPlan`] is configured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ErrorStats {
    /// Frames bit-corrupted on the inbound link.
    pub link_corrupt_injected: u64,
    /// Frames truncated on the inbound link.
    pub link_truncate_injected: u64,
    /// Frames the MAC RX CRC32 check caught and dropped (an error
    /// descriptor was published instead of the payload).
    pub crc_dropped: u64,
    /// Transient DMA completion errors injected (counts every failed
    /// attempt, including retries of the same command).
    pub dma_transient_errors: u64,
    /// DMA commands that eventually succeeded through retry.
    pub dma_retries_ok: u64,
    /// DMA commands aborted after exhausting retries (frame abort with
    /// ring cleanup).
    pub dma_aborts: u64,
    /// Bounded PCI stalls injected.
    pub pci_stalls: u64,
    /// Correctable single-bit ECC events in the frame memory.
    pub ecc_corrections: u64,
    /// Stuck-assist hangs that took effect (the unit had work pending).
    pub assist_hangs: u64,
    /// Watchdog resets of stuck assists.
    pub watchdog_resets: u64,
    /// Error return descriptors the host driver consumed and recycled.
    pub rx_error_returns: u64,
    /// Aborted transmit frames the host driver accounted and re-posted.
    pub tx_retries: u64,
    /// Frame-bus read completions that arrived without data and were
    /// recovered as aborted transfers.
    pub fm_short_reads: u64,
}

impl ErrorStats {
    /// Total injected faults (not recoveries).
    pub fn injected(&self) -> u64 {
        self.link_corrupt_injected
            + self.link_truncate_injected
            + self.dma_transient_errors
            + self.pci_stalls
            + self.ecc_corrections
            + self.assist_hangs
    }

    /// The stable `(name, value)` rows appended to `RunStats::summary()`.
    pub fn summary(&self) -> [(&'static str, u64); 13] {
        [
            ("err_link_corrupt", self.link_corrupt_injected),
            ("err_link_truncate", self.link_truncate_injected),
            ("err_crc_dropped", self.crc_dropped),
            ("err_dma_transient", self.dma_transient_errors),
            ("err_dma_retried", self.dma_retries_ok),
            ("err_dma_aborts", self.dma_aborts),
            ("err_pci_stalls", self.pci_stalls),
            ("err_ecc", self.ecc_corrections),
            ("err_assist_hangs", self.assist_hangs),
            ("err_watchdog_resets", self.watchdog_resets),
            ("err_rx_error_returns", self.rx_error_returns),
            ("err_tx_retries", self.tx_retries),
            ("err_fm_short_reads", self.fm_short_reads),
        ]
    }
}

/// What the link decided to do to one generated frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFault {
    /// Flip one bit somewhere in the frame body.
    Corrupt,
    /// Cut the frame short of its full length.
    Truncate,
}

/// Link-site state: the per-frame draw for bit corruption and
/// truncation. The mechanism (CRC stamping, the actual mutation) lives
/// in `nicsim-net`; this is only the policy stream and its counters.
#[derive(Debug, Clone)]
pub struct LinkFaults {
    rng: XorShift64,
    p_corrupt: f64,
    p_truncate: f64,
    /// Frames corrupted so far.
    pub injected_corrupt: u64,
    /// Frames truncated so far.
    pub injected_truncate: u64,
}

impl LinkFaults {
    /// Site state under `plan`.
    pub fn new(plan: &FaultPlan) -> LinkFaults {
        LinkFaults {
            rng: XorShift64::for_site(plan.seed, SITE_LINK),
            p_corrupt: plan.link_corrupt,
            p_truncate: plan.link_truncate,
            injected_corrupt: 0,
            injected_truncate: 0,
        }
    }

    /// Draw the fate of the next frame. Consumes exactly two Bernoulli
    /// draws per frame regardless of outcome, so enabling one class
    /// never shifts the other's stream.
    pub fn draw(&mut self) -> Option<LinkFault> {
        let corrupt = self.rng.chance(self.p_corrupt);
        let truncate = self.rng.chance(self.p_truncate);
        if corrupt {
            self.injected_corrupt += 1;
            Some(LinkFault::Corrupt)
        } else if truncate {
            self.injected_truncate += 1;
            Some(LinkFault::Truncate)
        } else {
            None
        }
    }

    /// A raw draw for picking the corruption position / truncated length.
    pub fn pick(&mut self, n: u64) -> u64 {
        self.rng.below(n.max(1))
    }
}

/// The fate of one payload DMA command under the fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmdOutcome {
    /// Extra delay (stall + retry backoff) before the command resolves.
    pub delay: Ps,
    /// Failed attempts before resolution (each one a transient error).
    pub attempts: u32,
    /// Whether a PCI stall was injected.
    pub stalled: bool,
    /// Whether the command ultimately aborts instead of transferring.
    pub abort: bool,
}

impl CmdOutcome {
    /// A clean pass-through outcome.
    pub const CLEAN: CmdOutcome = CmdOutcome {
        delay: Ps::ZERO,
        attempts: 0,
        stalled: false,
        abort: false,
    };
}

/// DMA-engine site state: transient errors with retry/backoff/abort,
/// PCI stalls, and stuck-unit hangs, plus the engine's fault counters.
#[derive(Debug, Clone)]
pub struct DmaFaults {
    rng: XorShift64,
    p_error: f64,
    p_stall: f64,
    stall: Ps,
    max_retries: u32,
    backoff: Ps,
    hang_period: Ps,
    watchdog: Ps,
    /// Next scheduled hang onset (`Ps::MAX` when hangs are disabled).
    next_hang_at: Ps,
    /// The unit is currently wedged (cleared by a watchdog reset).
    pub hung: bool,
    /// When the unit was first observed stuck (hung with work pending).
    pub stuck_since: Option<Ps>,
    /// Transient errors injected (failed attempts).
    pub transient_errors: u64,
    /// Commands recovered through retry.
    pub retries_ok: u64,
    /// Commands aborted after exhausting retries.
    pub aborts: u64,
    /// PCI stalls injected.
    pub stalls: u64,
    /// Hangs that took effect (counted at first stuck observation).
    pub hangs: u64,
    /// Watchdog resets of this unit.
    pub watchdog_resets: u64,
}

impl DmaFaults {
    /// Site state for `site` (one of [`SITE_DMA_READ`] /
    /// [`SITE_DMA_WRITE`]) under `plan`.
    pub fn new(plan: &FaultPlan, site: u64) -> DmaFaults {
        let hang_period = if plan.hang_period_us == 0 {
            Ps::MAX
        } else {
            Ps::from_us(plan.hang_period_us)
        };
        DmaFaults {
            rng: XorShift64::for_site(plan.seed, site),
            p_error: plan.dma_error,
            p_stall: plan.dma_stall,
            stall: Ps(plan.stall_ns * 1000),
            max_retries: plan.max_retries,
            backoff: Ps(plan.backoff_ns * 1000),
            hang_period,
            watchdog: Ps::from_us(plan.watchdog_us.max(1)),
            next_hang_at: hang_period,
            hung: false,
            stuck_since: None,
            transient_errors: 0,
            retries_ok: 0,
            aborts: 0,
            stalls: 0,
            hangs: 0,
            watchdog_resets: 0,
        }
    }

    /// Decide the fate of one payload command: an optional stall, then a
    /// geometric chain of failed attempts, each backed off exponentially.
    /// The accumulated delay is served before the command executes (or
    /// aborts); counters update immediately.
    pub fn draw_command(&mut self) -> CmdOutcome {
        let stalled = self.rng.chance(self.p_stall);
        let mut delay = if stalled {
            self.stalls += 1;
            self.stall
        } else {
            Ps::ZERO
        };
        let mut attempts = 0u32;
        while attempts <= self.max_retries && self.rng.chance(self.p_error) {
            delay += Ps(self.backoff.0 << attempts.min(16));
            attempts += 1;
        }
        let abort = attempts > self.max_retries;
        self.transient_errors += attempts as u64;
        if abort {
            self.aborts += 1;
        } else if attempts > 0 {
            self.retries_ok += 1;
        }
        CmdOutcome {
            delay,
            attempts,
            stalled,
            abort,
        }
    }

    /// Whether any fault class is live at this site (used to skip the
    /// draw entirely for control-plane commands).
    pub fn commands_faulty(&self) -> bool {
        self.p_error > 0.0 || self.p_stall > 0.0
    }

    /// Advance the hang schedule: returns `true` while the unit is
    /// wedged. Onset is a pure function of simulated time, so dense and
    /// event-driven kernels agree regardless of cycle skipping.
    pub fn hang_active(&mut self, now: Ps) -> bool {
        if !self.hung && now >= self.next_hang_at {
            self.hung = true;
        }
        self.hung
    }

    /// Record a stuck observation (hung with work pending) at `now`;
    /// returns `true` when the watchdog deadline has expired and the
    /// unit must be reset. The first stuck observation counts the hang.
    pub fn observe_stuck(&mut self, now: Ps) -> bool {
        match self.stuck_since {
            None => {
                self.stuck_since = Some(now);
                self.hangs += 1;
                false
            }
            Some(since) => now >= since + self.watchdog,
        }
    }

    /// Watchdog reset: clear the wedge, reschedule the next hang, count
    /// the recovery.
    pub fn watchdog_reset(&mut self, now: Ps) {
        self.hung = false;
        self.stuck_since = None;
        self.watchdog_resets += 1;
        self.next_hang_at = if self.hang_period == Ps::MAX {
            Ps::MAX
        } else {
            now + self.hang_period
        };
    }

    /// Clear the stuck observation (the unit made progress or drained).
    pub fn clear_stuck(&mut self) {
        self.stuck_since = None;
    }
}

/// Frame-memory site state: correctable single-bit ECC events on read
/// bursts, each costing a fixed correction latency.
#[derive(Debug, Clone)]
pub struct EccFaults {
    rng: XorShift64,
    p: f64,
    /// Extra service latency charged per corrected burst.
    pub extra: Ps,
    /// Corrections so far.
    pub corrections: u64,
}

impl EccFaults {
    /// Site state under `plan`. The correction penalty is fixed at 8 ns
    /// (a resync + scrub write at GDDR timescales).
    pub fn new(plan: &FaultPlan) -> EccFaults {
        EccFaults {
            rng: XorShift64::for_site(plan.seed, SITE_ECC),
            p: plan.ecc,
            extra: Ps(8_000),
            corrections: 0,
        }
    }

    /// Draw one read burst: `true` when a single-bit error was injected
    /// (and corrected).
    pub fn draw(&mut self) -> bool {
        if self.rng.chance(self.p) {
            self.corrections += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_streams_are_independent_and_reproducible() {
        let mut a = XorShift64::for_site(7, SITE_LINK);
        let mut b = XorShift64::for_site(7, SITE_LINK);
        let mut c = XorShift64::for_site(7, SITE_DMA_READ);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y, "same (seed, site) must replay");
        assert_ne!(x, z, "different sites must not correlate");
    }

    #[test]
    fn chance_respects_extremes() {
        let mut r = XorShift64::for_site(3, SITE_ECC);
        for _ in 0..64 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn chance_tracks_probability_roughly() {
        let mut r = XorShift64::for_site(11, SITE_LINK);
        let hits = (0..10_000).filter(|_| r.chance(0.1)).count();
        assert!((800..1200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn parse_roundtrips_through_spec() {
        let plan =
            FaultPlan::parse("seed=9,crc=0.001,dma=0.0002,hang_us=500,watchdog_us=80").unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.link_corrupt, 0.001);
        assert_eq!(plan.hang_period_us, 500);
        assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan);
    }

    #[test]
    fn parse_rate_shorthand_and_errors() {
        let plan = FaultPlan::parse("seed=2,rate=1e-3").unwrap();
        assert_eq!(plan.link_corrupt, 1e-3);
        assert_eq!(plan.dma_error, 1e-3);
        assert_eq!(plan.ecc, 1e-3);
        assert_eq!(plan.link_truncate, 1e-4);
        assert_eq!(plan.seed, 2);
        assert!(FaultPlan::parse("bogus").is_err());
        assert!(FaultPlan::parse("crc=2.0").is_err());
        assert!(FaultPlan::parse("martians=1").is_err());
    }

    #[test]
    fn link_draw_counts_and_replays() {
        let plan = FaultPlan {
            link_corrupt: 0.5,
            link_truncate: 0.5,
            ..FaultPlan::default()
        };
        let mut a = LinkFaults::new(&plan);
        let mut b = LinkFaults::new(&plan);
        let fa: Vec<_> = (0..100).map(|_| a.draw()).collect();
        let fb: Vec<_> = (0..100).map(|_| b.draw()).collect();
        assert_eq!(fa, fb);
        assert!(a.injected_corrupt > 0);
        assert!(a.injected_truncate > 0);
    }

    #[test]
    fn dma_outcomes_cover_retry_and_abort() {
        let plan = FaultPlan {
            dma_error: 0.9,
            dma_stall: 0.2,
            max_retries: 2,
            ..FaultPlan::default()
        };
        let mut d = DmaFaults::new(&plan, SITE_DMA_READ);
        let outcomes: Vec<_> = (0..200).map(|_| d.draw_command()).collect();
        assert!(outcomes.iter().any(|o| o.abort));
        assert!(outcomes.iter().any(|o| o.attempts > 0 && !o.abort));
        assert!(outcomes.iter().any(|o| o.stalled));
        assert_eq!(
            d.transient_errors,
            outcomes.iter().map(|o| o.attempts as u64).sum::<u64>()
        );
        assert!(d.aborts > 0 && d.retries_ok > 0 && d.stalls > 0);
        // Abort only after exhausting max_retries attempts.
        for o in &outcomes {
            if o.abort {
                assert_eq!(o.attempts, plan.max_retries + 1);
            }
        }
    }

    #[test]
    fn hang_onset_is_time_pure_and_watchdog_resets() {
        let plan = FaultPlan {
            hang_period_us: 10,
            watchdog_us: 5,
            ..FaultPlan::default()
        };
        let mut d = DmaFaults::new(&plan, SITE_DMA_WRITE);
        assert!(!d.hang_active(Ps::from_us(9)));
        assert!(d.hang_active(Ps::from_us(10)));
        // Skipping straight past the onset gives the same answer.
        let mut e = DmaFaults::new(&plan, SITE_DMA_WRITE);
        assert!(e.hang_active(Ps::from_us(25)));
        // Stuck observations arm the watchdog after the timeout.
        assert!(!d.observe_stuck(Ps::from_us(10)));
        assert!(!d.observe_stuck(Ps::from_us(12)));
        assert!(d.observe_stuck(Ps::from_us(15)));
        d.watchdog_reset(Ps::from_us(15));
        assert!(!d.hung);
        assert_eq!(d.watchdog_resets, 1);
        assert_eq!(d.hangs, 1);
        // The next hang is rescheduled relative to the reset.
        assert!(!d.hang_active(Ps::from_us(24)));
        assert!(d.hang_active(Ps::from_us(25)));
    }

    #[test]
    fn ecc_draws_count() {
        let plan = FaultPlan {
            ecc: 1.0,
            ..FaultPlan::default()
        };
        let mut e = EccFaults::new(&plan);
        assert!(e.draw());
        assert_eq!(e.corrections, 1);
    }

    #[test]
    fn error_stats_summary_is_stable() {
        let s = ErrorStats {
            crc_dropped: 3,
            ..ErrorStats::default()
        };
        let rows = s.summary();
        assert_eq!(rows[2], ("err_crc_dropped", 3));
        assert_eq!(rows.len(), 13);
        assert_eq!(s.injected(), 0);
    }
}
