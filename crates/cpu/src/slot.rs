//! The communication slot between a firmware future and its core engine.
//!
//! Firmware runs as a Rust future; the core timing engine polls it. They
//! exchange exactly one operation at a time through [`CoreSlot`]: the
//! future deposits a [`PendingOp`] and suspends; the engine charges the
//! operation's cycles (issuing real scratchpad transactions for memory
//! ops), deposits the response, and polls again.

use crate::func::FwFunc;
use nicsim_mem::SpRequest;
use std::cell::RefCell;
use std::rc::Rc;

/// An operation requested by firmware, to be charged by the core engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendingOp {
    /// `n` ALU/control instructions of straight-line work.
    Alu(u32),
    /// A conditional branch; `mispredict` annuls one issue slot.
    Branch {
        /// Whether the static predictor got it wrong.
        mispredict: bool,
    },
    /// A scratchpad transaction (load, store, or atomic RMW).
    Mem(SpRequest),
    /// Wait-for-interrupt: one instruction to issue, then the core parks
    /// until its wake line is raised (interrupt dispatch mode).
    Wfi,
}

/// A coarse record of one executed operation, for the ILP trace expansion
/// (Table 2). Kept deliberately small; the `nicsim-ilp` crate expands
/// these into register-level instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpEvent {
    /// `n` ALU instructions.
    Alu(u32),
    /// A load.
    Load,
    /// A store.
    Store,
    /// An atomic read-modify-write.
    Rmw,
    /// A branch (taken flag records misprediction in the static scheme).
    Branch {
        /// Whether the static predictor got it wrong.
        mispredict: bool,
    },
}

/// Shared state between one firmware future and its core engine.
#[derive(Debug, Default)]
pub struct CoreSlot {
    /// Operation awaiting charging (set by the future, taken by the engine).
    pub pending: Option<PendingOp>,
    /// Response to the last operation (set by engine, taken by future).
    pub response: Option<u32>,
    /// Current profiling tag.
    pub func: FwFunc,
    /// Optional coarse operation trace for ILP analysis.
    pub trace: Option<Vec<OpEvent>>,
    /// Set by the engine when the firmware future completed.
    pub halted: bool,
}

/// Reference-counted handle to a [`CoreSlot`]. The simulator is
/// single-threaded, so `Rc<RefCell<_>>` suffices and keeps polling cheap.
pub type SharedSlot = Rc<RefCell<CoreSlot>>;

/// Create a fresh shared slot.
pub fn new_slot() -> SharedSlot {
    Rc::new(RefCell::new(CoreSlot::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_roundtrip() {
        let slot = new_slot();
        slot.borrow_mut().pending = Some(PendingOp::Alu(3));
        let taken = slot.borrow_mut().pending.take();
        assert_eq!(taken, Some(PendingOp::Alu(3)));
        slot.borrow_mut().response = Some(7);
        assert_eq!(slot.borrow_mut().response.take(), Some(7));
    }

    #[test]
    fn default_tag_is_idle() {
        let slot = new_slot();
        assert_eq!(slot.borrow().func, FwFunc::Idle);
        assert!(!slot.borrow().halted);
    }

    #[test]
    fn trace_collects_events() {
        let slot = new_slot();
        slot.borrow_mut().trace = Some(Vec::new());
        slot.borrow_mut()
            .trace
            .as_mut()
            .unwrap()
            .push(OpEvent::Load);
        assert_eq!(slot.borrow().trace.as_ref().unwrap().len(), 1);
    }
}
