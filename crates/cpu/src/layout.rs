//! Code layout of the firmware in the 128 KB instruction memory.
//!
//! The timing model needs instruction *addresses* to drive the per-core
//! I-caches. Each firmware function is assigned a contiguous region of
//! the instruction memory; as a handler executes, its fetch pointer walks
//! the region (wrapping at the end, which models the handler's internal
//! loops re-executing the same lines). Region sizes are taken from the
//! static footprint of the Tigon-II-derived handlers: a few hundred
//! instructions each, comfortably inside the 128 KB instruction memory
//! but collectively larger than nothing — so cold misses and task
//! migration across cores behave as in the paper (Table 3's 0.01 IPC of
//! I-miss stalls; Table 4's ~3 % instruction-bus utilization).

use crate::func::FwFunc;

/// Static instruction footprint of each firmware function, in
/// instructions (4 bytes each).
#[derive(Debug, Clone)]
pub struct CodeLayout {
    /// `(base_byte_address, length_in_instructions)` per function.
    regions: [(u64, u32); 9],
}

impl CodeLayout {
    /// The default layout: handler footprints in instructions.
    pub fn new() -> CodeLayout {
        // Footprints chosen to mirror the relative sizes of the
        // Tigon-II-derived handlers; total ≈ 3.4 K instructions ≈ 13.6 KB
        // of the 128 KB instruction memory.
        let sizes: [(FwFunc, u32); 9] = [
            (FwFunc::FetchSendBd, 320),
            (FwFunc::SendFrame, 760),
            (FwFunc::SendDispatch, 440),
            (FwFunc::SendLock, 48),
            (FwFunc::FetchRecvBd, 280),
            (FwFunc::RecvFrame, 700),
            (FwFunc::RecvDispatch, 420),
            (FwFunc::RecvLock, 48),
            (FwFunc::Idle, 96),
        ];
        let mut regions = [(0u64, 0u32); 9];
        let mut base = 0u64;
        for (f, len) in sizes {
            regions[f.index()] = (base, len);
            base += len as u64 * 4;
        }
        CodeLayout { regions }
    }

    /// The `(base_byte_address, length_in_instructions)` of a function.
    pub fn region(&self, f: FwFunc) -> (u64, u32) {
        self.regions[f.index()]
    }

    /// Total footprint in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.regions.iter().map(|&(_, len)| len as u64 * 4).sum()
    }
}

impl Default for CodeLayout {
    fn default() -> Self {
        CodeLayout::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let l = CodeLayout::new();
        let mut regions: Vec<_> = FwFunc::ALL.iter().map(|&f| l.region(f)).collect();
        regions.sort();
        for w in regions.windows(2) {
            let (base0, len0) = w[0];
            let (base1, _) = w[1];
            assert!(base0 + len0 as u64 * 4 <= base1, "overlap: {w:?}");
        }
    }

    #[test]
    fn footprint_fits_instruction_memory() {
        let l = CodeLayout::new();
        assert!(l.total_bytes() <= 128 * 1024);
        // ... but exceeds one 8 KB I-cache, so task migration matters.
        assert!(l.total_bytes() > 8 * 1024);
    }
}
