//! Firmware function tags and per-function profiling.
//!
//! The paper's execution profiles (Tables 1, 5, 6) break NIC processing
//! into the four task functions plus, for the parallel firmwares, the
//! dispatch/ordering machinery and lock overhead of each direction. Every
//! cycle, instruction, and memory access a core spends is attributed to
//! the tag active at the time.

/// The profiling buckets of Tables 5 and 6.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FwFunc {
    /// Fetch send buffer descriptors from host memory (32 per DMA).
    FetchSendBd,
    /// Move a frame to the transmit buffer and hand it to the MAC
    /// (steps 4–6 of Figure 1).
    SendFrame,
    /// Send-side event detection, event-structure construction, and
    /// in-order commit ("Send Dispatch and Ordering").
    SendDispatch,
    /// Send-side lock acquire/release and spin time ("Send Locking").
    SendLock,
    /// Fetch receive buffer descriptors from host memory (16 per DMA).
    FetchRecvBd,
    /// Move a received frame to a preallocated host buffer and produce its
    /// completion descriptor (steps 1–4 of Figure 2).
    RecvFrame,
    /// Receive-side dispatch and ordering.
    RecvDispatch,
    /// Receive-side locking.
    RecvLock,
    /// Polling with no work available.
    #[default]
    Idle,
}

impl FwFunc {
    /// All tags, in table order.
    pub const ALL: [FwFunc; 9] = [
        FwFunc::FetchSendBd,
        FwFunc::SendFrame,
        FwFunc::SendDispatch,
        FwFunc::SendLock,
        FwFunc::FetchRecvBd,
        FwFunc::RecvFrame,
        FwFunc::RecvDispatch,
        FwFunc::RecvLock,
        FwFunc::Idle,
    ];

    /// Dense index.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&f| f == self)
            .expect("tag in ALL")
    }

    /// The lock bucket charged while acquiring/releasing locks inside
    /// this function.
    pub fn lock_bucket(self) -> FwFunc {
        match self {
            FwFunc::FetchSendBd | FwFunc::SendFrame | FwFunc::SendDispatch | FwFunc::SendLock => {
                FwFunc::SendLock
            }
            FwFunc::FetchRecvBd | FwFunc::RecvFrame | FwFunc::RecvDispatch | FwFunc::RecvLock => {
                FwFunc::RecvLock
            }
            FwFunc::Idle => FwFunc::Idle,
        }
    }

    /// Row label as printed in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            FwFunc::FetchSendBd => "Fetch Send BD",
            FwFunc::SendFrame => "Send Frame",
            FwFunc::SendDispatch => "Send Dispatch and Ordering",
            FwFunc::SendLock => "Send Locking",
            FwFunc::FetchRecvBd => "Fetch Receive BD",
            FwFunc::RecvFrame => "Receive Frame",
            FwFunc::RecvDispatch => "Receive Dispatch and Ordering",
            FwFunc::RecvLock => "Receive Locking",
            FwFunc::Idle => "Idle",
        }
    }
}

/// Where a core cycle went — the rows of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallBucket {
    /// An instruction issued (useful work).
    Exec,
    /// Stalled on an instruction-cache miss.
    IMiss,
    /// The mandatory extra cycle of every 2-cycle scratchpad load.
    LoadStall,
    /// Extra cycles lost to scratchpad bank conflicts or a busy store
    /// buffer.
    Conflict,
    /// Pipeline hazards: issue slots annulled by statically mispredicted
    /// branches and late branch conditions.
    Pipeline,
}

impl StallBucket {
    /// All buckets in Table 3 order.
    pub const ALL: [StallBucket; 5] = [
        StallBucket::Exec,
        StallBucket::IMiss,
        StallBucket::LoadStall,
        StallBucket::Conflict,
        StallBucket::Pipeline,
    ];

    /// Dense index.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&b| b == self)
            .expect("bucket in ALL")
    }

    /// Row label as printed in Table 3.
    pub fn label(self) -> &'static str {
        match self {
            StallBucket::Exec => "Execution",
            StallBucket::IMiss => "Instruction miss stalls",
            StallBucket::LoadStall => "Load stalls",
            StallBucket::Conflict => "Scratchpad conflict stalls",
            StallBucket::Pipeline => "Pipeline Stalls",
        }
    }
}

/// Counters for one firmware function on one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuncProfile {
    /// Instructions issued.
    pub instructions: u64,
    /// Scratchpad accesses performed (loads + stores + RMW ops).
    pub mem_accesses: u64,
    /// Cycles by [`StallBucket`] (index with [`StallBucket::index`]).
    pub cycles: [u64; 5],
}

impl FuncProfile {
    /// Total cycles across all buckets.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }
}

/// The complete profile of one core.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreProfile {
    per_func: [FuncProfile; 9],
}

impl CoreProfile {
    /// Create a zeroed profile.
    pub fn new() -> CoreProfile {
        CoreProfile::default()
    }

    /// Profile of one function.
    pub fn func(&self, f: FwFunc) -> &FuncProfile {
        &self.per_func[f.index()]
    }

    /// Mutable profile of one function.
    pub fn func_mut(&mut self, f: FwFunc) -> &mut FuncProfile {
        &mut self.per_func[f.index()]
    }

    /// Sum a quantity over all functions.
    pub fn total<T: Fn(&FuncProfile) -> u64>(&self, get: T) -> u64 {
        self.per_func.iter().map(get).sum()
    }

    /// Total cycles in `bucket` across all functions.
    pub fn bucket_cycles(&self, bucket: StallBucket) -> u64 {
        self.per_func.iter().map(|p| p.cycles[bucket.index()]).sum()
    }

    /// Merge another profile into this one (for multi-core aggregation).
    pub fn merge(&mut self, other: &CoreProfile) {
        for (a, b) in self.per_func.iter_mut().zip(other.per_func.iter()) {
            a.instructions += b.instructions;
            a.mem_accesses += b.mem_accesses;
            for (c, d) in a.cycles.iter_mut().zip(b.cycles.iter()) {
                *c += *d;
            }
        }
    }

    /// Zero all counters.
    pub fn reset(&mut self) {
        self.per_func = Default::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, f) in FwFunc::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
        for (i, b) in StallBucket::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
    }

    #[test]
    fn lock_buckets_follow_direction() {
        assert_eq!(FwFunc::SendFrame.lock_bucket(), FwFunc::SendLock);
        assert_eq!(FwFunc::FetchSendBd.lock_bucket(), FwFunc::SendLock);
        assert_eq!(FwFunc::RecvDispatch.lock_bucket(), FwFunc::RecvLock);
        assert_eq!(FwFunc::Idle.lock_bucket(), FwFunc::Idle);
    }

    #[test]
    fn profile_accumulates_and_merges() {
        let mut a = CoreProfile::new();
        a.func_mut(FwFunc::SendFrame).instructions = 10;
        a.func_mut(FwFunc::SendFrame).cycles[StallBucket::Exec.index()] = 12;
        let mut b = CoreProfile::new();
        b.func_mut(FwFunc::SendFrame).instructions = 5;
        b.func_mut(FwFunc::RecvFrame).mem_accesses = 3;
        a.merge(&b);
        assert_eq!(a.func(FwFunc::SendFrame).instructions, 15);
        assert_eq!(a.func(FwFunc::RecvFrame).mem_accesses, 3);
        assert_eq!(a.total(|p| p.instructions), 15);
        assert_eq!(a.bucket_cycles(StallBucket::Exec), 12);
        a.reset();
        assert_eq!(a.total(|p| p.instructions), 0);
    }

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(FwFunc::FetchSendBd.label(), "Fetch Send BD");
        assert_eq!(StallBucket::Conflict.label(), "Scratchpad conflict stalls");
    }
}
