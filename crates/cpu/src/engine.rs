//! The per-core timing engine.
//!
//! `Core::tick` is called once per CPU-clock cycle (after the crossbar has
//! arbitrated). It advances the core's pipeline state machine, charging
//! every cycle to exactly one [`StallBucket`] of the current firmware
//! function, and polls the firmware future whenever the core is ready to
//! issue the next operation. See the crate docs for the timing rules.

use crate::func::{CoreProfile, FwFunc, StallBucket};
use crate::layout::CodeLayout;
use crate::slot::{new_slot, PendingOp, SharedSlot};
use nicsim_mem::{Crossbar, ICache, ICacheConfig, InstrMemory, SpOp, SpRequest, XbarPort};
use nicsim_obs::{Event, NullProbe, Probe};
use nicsim_sim::Ps;
use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll, Waker};

/// Cycles from a doorbell raising the wake line of a parked core to the
/// firmware's first dispatch instruction issuing — the paper's 2-cycle
/// event-to-dispatch cost, preserved by the interrupt mode.
const WAKE_DISPATCH_CYCLES: u32 = 2;

/// What to do after the currently-charging cycles elapse.
#[derive(Debug, Clone, Copy)]
enum Then {
    /// Poll the firmware for its next operation.
    Poll,
    /// Submit this memory transaction to the crossbar.
    Mem(SpRequest),
    /// Park the core until its wake line is raised (`wfi`).
    Park,
}

#[derive(Debug, Clone, Copy)]
enum State {
    /// Ready to poll the firmware future.
    Poll,
    /// Charging cycles: I-miss stall, then execution, then annulled slots.
    Busy {
        imiss: u32,
        exec: u32,
        annul: u32,
        then: Then,
    },
    /// Port blocked by the in-flight buffered store.
    WaitStoreDrain { req: SpRequest, is_load: bool },
    /// A load/RMW is in the crossbar; waiting for data.
    WaitMem { waited: u32 },
    /// Parked by `wfi`; wakes when the wake line is raised.
    Parked,
    /// Firmware future completed.
    Halted,
}

/// Aggregate engine statistics not tied to a firmware function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreEngineStats {
    /// Total ticks the core has run.
    pub ticks: u64,
    /// Ticks spent with the future halted.
    pub halted_ticks: u64,
    /// Ticks spent parked on `wfi` (interrupt dispatch mode).
    pub parked_ticks: u64,
}

/// One simulated processing core.
pub struct Core {
    id: usize,
    slot: SharedSlot,
    fut: Option<Pin<Box<dyn Future<Output = ()>>>>,
    state: State,
    store_inflight: bool,
    /// Level-triggered wake line, consumed when a parked core resumes.
    wake_pending: bool,
    icache: ICache,
    layout: CodeLayout,
    /// Offset of the fetch pointer within the current function's region.
    vpc_off: u64,
    /// Function whose region the fetch pointer is walking.
    fetch_func: FwFunc,
    /// Last line touched, to avoid redundant I-cache lookups.
    last_line: Option<u64>,
    cycle: u64,
    profile: CoreProfile,
    stats: CoreEngineStats,
}

impl Core {
    /// Create core `id` (which is also its crossbar port) with the given
    /// I-cache geometry and code layout.
    pub fn new(id: usize, icache_cfg: ICacheConfig, layout: CodeLayout) -> Core {
        Core {
            id,
            slot: new_slot(),
            fut: None,
            state: State::Poll,
            store_inflight: false,
            wake_pending: false,
            icache: ICache::new(icache_cfg),
            layout,
            vpc_off: 0,
            fetch_func: FwFunc::Idle,
            last_line: None,
            cycle: 0,
            profile: CoreProfile::new(),
            stats: CoreEngineStats::default(),
        }
    }

    /// The core id / crossbar port.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The slot shared with the firmware future (create a
    /// [`crate::CoreCtx`] from this to write firmware).
    pub fn slot(&self) -> SharedSlot {
        self.slot.clone()
    }

    /// Install the firmware future this core runs.
    pub fn install(&mut self, fut: impl Future<Output = ()> + 'static) {
        self.fut = Some(Box::pin(fut));
        self.state = State::Poll;
        self.wake_pending = false;
        self.slot.borrow_mut().halted = false;
    }

    /// Raise the core's wake line. A parked core resumes on its next
    /// tick, paying the 2-cycle dispatch cost; a running core consumes
    /// the (level-triggered, sticky) signal at its next `wfi`.
    pub fn raise_wake(&mut self) {
        self.wake_pending = true;
    }

    /// Whether the core is parked on `wfi`.
    pub fn parked(&self) -> bool {
        matches!(self.state, State::Parked)
    }

    /// Whether the firmware future has completed.
    pub fn halted(&self) -> bool {
        matches!(self.state, State::Halted)
    }

    /// The profiling counters collected so far.
    pub fn profile(&self) -> &CoreProfile {
        &self.profile
    }

    /// Engine-level statistics.
    pub fn engine_stats(&self) -> CoreEngineStats {
        self.stats
    }

    /// The core's instruction cache (for hit/miss statistics).
    pub fn icache(&self) -> &ICache {
        &self.icache
    }

    /// Zero profiling counters (for steady-state measurement windows).
    pub fn reset_stats(&mut self) {
        self.profile.reset();
        self.stats = CoreEngineStats::default();
        self.icache.reset_stats();
    }

    fn charge(&mut self, bucket: StallBucket) {
        let f = self.slot.borrow().func;
        self.profile.func_mut(f).cycles[bucket.index()] += 1;
    }

    /// Walk the fetch pointer over `n` instructions of the current
    /// function's code region, returning I-miss stall cycles. Emits
    /// [`Event::HandlerEnter`] when the fetch target moves to a different
    /// firmware function and [`Event::IcacheAccess`] per line touched.
    fn touch_code<P: Probe>(
        &mut self,
        mut n: u32,
        imem: &mut InstrMemory,
        at: Ps,
        probe: &mut P,
    ) -> u32 {
        let func = self.slot.borrow().func;
        let (base, len_instr) = self.layout.region(func);
        let region_bytes = len_instr as u64 * 4;
        if func != self.fetch_func {
            // Handler entry: fetch restarts at the function's first line.
            self.fetch_func = func;
            self.vpc_off = 0;
            self.last_line = None;
            if P::ENABLED {
                probe.emit(Event::HandlerEnter {
                    core: self.id,
                    func: func.label(),
                    at,
                });
            }
        }
        let line_bytes = self.icache.config().line_bytes as u64;
        let mut stall = 0u32;
        while n > 0 {
            let addr = base + self.vpc_off;
            let line = addr / line_bytes;
            if self.last_line != Some(line) {
                self.last_line = Some(line);
                let hit = self.icache.access(addr);
                if P::ENABLED {
                    probe.emit(Event::IcacheAccess {
                        core: self.id,
                        hit,
                        at,
                    });
                }
                if !hit {
                    let now = self.cycle + stall as u64;
                    let done = imem.fill(now, line_bytes);
                    stall += (done - now) as u32;
                }
            }
            let line_off = self.vpc_off % line_bytes;
            let in_line = ((line_bytes - line_off) / 4) as u32;
            let take = n.min(in_line.max(1));
            self.vpc_off = (self.vpc_off + take as u64 * 4) % region_bytes;
            n -= take;
        }
        stall
    }

    /// Advance one CPU cycle. Must be called after `xbar.tick()` for the
    /// same cycle.
    pub fn tick(&mut self, xbar: &mut Crossbar, imem: &mut InstrMemory) {
        let id = self.id;
        self.tick_probed(&mut xbar.port(id), imem, Ps::ZERO, &mut NullProbe);
    }

    /// [`Core::tick`] with probe instrumentation, stamping events with
    /// the simulated time `now`. Generic over the crossbar port view so
    /// the same engine runs against the sequential kernel
    /// ([`nicsim_mem::BoundPort`]) and the domain-parallel kernel
    /// ([`nicsim_mem::PortHandle`]).
    pub fn tick_probed<X: XbarPort, P: Probe>(
        &mut self,
        port: &mut X,
        imem: &mut InstrMemory,
        now: Ps,
        probe: &mut P,
    ) {
        self.cycle += 1;
        self.stats.ticks += 1;

        // Drain a completed buffered store.
        if self.store_inflight && port.take_response().is_some() {
            self.store_inflight = false;
        }

        // At most one state-advancing action consumes this cycle; the
        // `loop` exists only for the zero-cycle transitions (memory
        // response consumption and polling chain into the next
        // instruction's first cycle).
        loop {
            match self.state {
                State::Halted => {
                    self.stats.halted_ticks += 1;
                    return;
                }
                State::Poll => {
                    let waker = Waker::noop();
                    let mut cx = Context::from_waker(waker);
                    let fut = self.fut.as_mut().expect("firmware installed");
                    match fut.as_mut().poll(&mut cx) {
                        Poll::Ready(()) => {
                            self.state = State::Halted;
                            self.slot.borrow_mut().halted = true;
                            continue;
                        }
                        Poll::Pending => {}
                    }
                    let op = self
                        .slot
                        .borrow_mut()
                        .pending
                        .take()
                        .expect("firmware future suspended without issuing an op");
                    let (n_instr, exec, annul, then, is_mem) = match op {
                        PendingOp::Alu(n) => (n, n, 0, Then::Poll, false),
                        PendingOp::Branch { mispredict } => {
                            (1, 1, u32::from(mispredict), Then::Poll, false)
                        }
                        PendingOp::Mem(req) => (1, 1, 0, Then::Mem(req), true),
                        PendingOp::Wfi => (1, 1, 0, Then::Park, false),
                    };
                    debug_assert!(n_instr > 0, "alu(0) is filtered in CoreCtx");
                    let imiss = self.touch_code(n_instr, imem, now, probe);
                    {
                        let f = self.slot.borrow().func;
                        let p = self.profile.func_mut(f);
                        p.instructions += n_instr as u64;
                        if is_mem {
                            p.mem_accesses += 1;
                        }
                    }
                    self.state = State::Busy {
                        imiss,
                        exec,
                        annul,
                        then,
                    };
                    continue; // consume this cycle in Busy
                }
                State::Busy {
                    mut imiss,
                    mut exec,
                    mut annul,
                    then,
                } => {
                    // Consume one cycle.
                    if imiss > 0 {
                        self.charge(StallBucket::IMiss);
                        imiss -= 1;
                    } else if exec > 0 {
                        self.charge(StallBucket::Exec);
                        exec -= 1;
                    } else {
                        debug_assert!(annul > 0);
                        self.charge(StallBucket::Pipeline);
                        annul -= 1;
                    }
                    if imiss + exec + annul > 0 {
                        self.state = State::Busy {
                            imiss,
                            exec,
                            annul,
                            then,
                        };
                        return;
                    }
                    // Last cycle: perform the follow-up action at the tail
                    // of this cycle.
                    match then {
                        Then::Poll => {
                            // ALU/branch ops complete with a dummy value.
                            self.slot.borrow_mut().response = Some(0);
                            self.state = State::Poll;
                        }
                        Then::Mem(req) => {
                            let is_store = matches!(req.op, SpOp::Write(_));
                            if self.store_inflight {
                                self.state = State::WaitStoreDrain {
                                    req,
                                    is_load: !is_store,
                                };
                            } else if is_store {
                                port.submit(req);
                                self.store_inflight = true;
                                // Store response value is the written word.
                                if let SpOp::Write(v) = req.op {
                                    self.slot.borrow_mut().response = Some(v);
                                }
                                self.state = State::Poll;
                            } else {
                                port.submit(req);
                                self.state = State::WaitMem { waited: 0 };
                            }
                        }
                        Then::Park => {
                            // The response is deposited on resume, when
                            // the wake dispatch completes.
                            self.state = State::Parked;
                        }
                    }
                    return;
                }
                State::WaitStoreDrain { req, is_load } => {
                    if !self.store_inflight {
                        // Port freed this cycle; the submit rides the tail
                        // of this (conflict) cycle.
                        self.charge(StallBucket::Conflict);
                        port.submit(req);
                        if is_load {
                            self.state = State::WaitMem { waited: 0 };
                        } else {
                            self.store_inflight = true;
                            if let SpOp::Write(v) = req.op {
                                self.slot.borrow_mut().response = Some(v);
                            }
                            self.state = State::Poll;
                        }
                    } else {
                        self.charge(StallBucket::Conflict);
                    }
                    return;
                }
                State::Parked => {
                    if self.wake_pending {
                        // Doorbell: resume through the fixed wake
                        // dispatch, whose first cycle charges now.
                        self.wake_pending = false;
                        self.state = State::Busy {
                            imiss: 0,
                            exec: WAKE_DISPATCH_CYCLES,
                            annul: 0,
                            then: Then::Poll,
                        };
                        continue;
                    }
                    self.charge(StallBucket::Exec);
                    self.stats.parked_ticks += 1;
                    return;
                }
                State::WaitMem { waited } => {
                    if let Some(v) = port.take_response() {
                        self.slot.borrow_mut().response = Some(v);
                        // The dependent instruction issues this very
                        // cycle: chain into Poll without consuming.
                        self.state = State::Poll;
                        continue;
                    }
                    self.charge(if waited == 0 {
                        StallBucket::LoadStall
                    } else {
                        StallBucket::Conflict
                    });
                    self.state = State::WaitMem { waited: waited + 1 };
                    return;
                }
            }
        }
    }
}

impl Core {
    /// Lower bound, in cycles, on when this core can next change
    /// architectural state *assuming no crossbar traffic is pending
    /// anywhere* (the system kernel checks that separately).
    ///
    /// `Busy` is the only multi-cycle state with a knowable span: the
    /// core does nothing but charge stall buckets until the remaining
    /// `imiss + exec + annul` cycles elapse (the final one performs the
    /// follow-up action, so it must be simulated for real). Every other
    /// live state may act on the very next cycle.
    pub fn wake_in(&self) -> u64 {
        match self.state {
            State::Halted => u64::MAX,
            State::Busy {
                imiss, exec, annul, ..
            } => imiss as u64 + exec as u64 + annul as u64,
            // A parked core is inert until a doorbell raises its wake
            // line; once raised it resumes on the very next cycle. The
            // kernel re-evaluates wakeups after every stepped cycle, so
            // a doorbell arriving mid-skip re-aligns the countdown
            // without losing the 2-cycle dispatch cost (charged by the
            // resume path in `tick`).
            State::Parked => {
                if self.wake_pending {
                    1
                } else {
                    u64::MAX
                }
            }
            _ => 1,
        }
    }

    /// Fast-forward `n` cycles of provably-uneventful work, preserving
    /// every observable counter exactly as `n` calls to
    /// [`Core::tick`] would: tick counts, halted-tick counts, and
    /// per-bucket stall attribution in `imiss -> exec -> annul` order.
    ///
    /// Callers must guarantee `n < wake_in()` (the state-changing final
    /// cycle of a `Busy` span is never skipped) and that no crossbar
    /// response is pending for this core.
    pub fn skip_cycles(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.cycle += n;
        self.stats.ticks += n;
        match &mut self.state {
            State::Halted => self.stats.halted_ticks += n,
            State::Busy {
                imiss, exec, annul, ..
            } => {
                debug_assert!(
                    (*imiss as u64 + *exec as u64 + *annul as u64) > n,
                    "skip must not consume the final Busy cycle"
                );
                let func = self.slot.borrow().func;
                let p = self.profile.func_mut(func);
                let mut left = n;
                let take = (*imiss as u64).min(left);
                p.cycles[StallBucket::IMiss.index()] += take;
                *imiss -= take as u32;
                left -= take;
                let take = (*exec as u64).min(left);
                p.cycles[StallBucket::Exec.index()] += take;
                *exec -= take as u32;
                left -= take;
                let take = (*annul as u64).min(left);
                p.cycles[StallBucket::Pipeline.index()] += take;
                *annul -= take as u32;
                left -= take;
                debug_assert_eq!(left, 0);
            }
            // Parked cores are the common case for the interrupt-mode
            // event kernel: charge the elided cycles exactly as dense
            // ticking would (idle exec time to the current function).
            // The wake line must be down — a raised line makes
            // `wake_in()` report 1, so the kernel never skips past the
            // resume cycle and the 2-cycle wake dispatch is preserved.
            State::Parked => {
                debug_assert!(
                    !self.wake_pending,
                    "skipped a parked core with its wake line raised"
                );
                let func = self.slot.borrow().func;
                self.profile.func_mut(func).cycles[StallBucket::Exec.index()] += n;
                self.stats.parked_ticks += n;
            }
            _ => unreachable!("skipped a core in a single-cycle state"),
        }
    }
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("cycle", &self.cycle)
            .field("halted", &self.halted())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::CoreCtx;
    use crate::func::FwFunc;
    use nicsim_mem::Scratchpad;

    struct Rig {
        core: Core,
        xbar: Crossbar,
        sp: Scratchpad,
        imem: InstrMemory,
    }

    impl Rig {
        fn new() -> Rig {
            Rig {
                core: Core::new(0, ICacheConfig::default(), CodeLayout::new()),
                xbar: Crossbar::new(1, 4),
                sp: Scratchpad::new(4096, 4),
                imem: InstrMemory::new(),
            }
        }

        fn ctx(&self) -> CoreCtx {
            CoreCtx::new(self.core.slot(), 0)
        }

        /// Run until the firmware halts; returns ticks consumed.
        fn run(&mut self, max: u64) -> u64 {
            for t in 0..max {
                if self.core.halted() {
                    return t;
                }
                self.xbar.tick(&mut self.sp);
                self.core.tick(&mut self.xbar, &mut self.imem);
            }
            panic!("firmware did not halt within {max} ticks");
        }
    }

    /// Discount I-miss stalls (cold caches) when checking cycle math.
    fn cycles_sans_imiss(core: &Core) -> u64 {
        let p = core.profile();
        p.total(|f| f.total_cycles()) - p.bucket_cycles(StallBucket::IMiss)
    }

    #[test]
    fn alu_costs_one_cycle_each() {
        let mut rig = Rig::new();
        let ctx = rig.ctx();
        rig.core.install(async move {
            ctx.set_func(FwFunc::SendFrame);
            ctx.alu(5).await;
        });
        rig.run(100);
        assert_eq!(cycles_sans_imiss(&rig.core), 5);
        assert_eq!(rig.core.profile().func(FwFunc::SendFrame).instructions, 5);
    }

    #[test]
    fn load_costs_two_cycles_uncontended() {
        let mut rig = Rig::new();
        rig.sp.poke(16, 42);
        let ctx = rig.ctx();
        rig.core.install(async move {
            ctx.set_func(FwFunc::SendFrame);
            let v = ctx.load(16).await;
            assert_eq!(v, 42);
        });
        rig.run(100);
        let p = rig.core.profile();
        assert_eq!(p.bucket_cycles(StallBucket::LoadStall), 1);
        assert_eq!(p.bucket_cycles(StallBucket::Conflict), 0);
        assert_eq!(cycles_sans_imiss(&rig.core), 2);
    }

    #[test]
    fn store_does_not_stall() {
        let mut rig = Rig::new();
        let ctx = rig.ctx();
        rig.core.install(async move {
            ctx.set_func(FwFunc::SendFrame);
            ctx.store(8, 7).await;
            ctx.alu(3).await;
        });
        rig.run(100);
        // 1 (store issue) + 3 (alu): the store drains in the background.
        assert_eq!(cycles_sans_imiss(&rig.core), 4);
        assert_eq!(rig.sp.peek(8), 7);
    }

    #[test]
    fn back_to_back_stores_stall_on_buffer() {
        let mut rig = Rig::new();
        let ctx = rig.ctx();
        rig.core.install(async move {
            ctx.set_func(FwFunc::SendFrame);
            ctx.store(8, 1).await;
            ctx.store(12, 2).await;
        });
        rig.run(100);
        let p = rig.core.profile();
        assert!(
            p.bucket_cycles(StallBucket::Conflict) >= 1,
            "second store must wait for the single store buffer"
        );
        assert_eq!(rig.sp.peek(8), 1);
        assert_eq!(rig.sp.peek(12), 2);
    }

    #[test]
    fn branch_miss_annuls_a_slot() {
        let mut rig = Rig::new();
        let ctx = rig.ctx();
        rig.core.install(async move {
            ctx.set_func(FwFunc::SendFrame);
            ctx.branch().await;
            ctx.branch_miss().await;
        });
        rig.run(100);
        let p = rig.core.profile();
        assert_eq!(p.bucket_cycles(StallBucket::Pipeline), 1);
        assert_eq!(p.bucket_cycles(StallBucket::Exec), 2);
        assert_eq!(p.total(|f| f.instructions), 2);
    }

    #[test]
    fn rmw_set_and_update_roundtrip() {
        let mut rig = Rig::new();
        let ctx = rig.ctx();
        rig.core.install(async move {
            ctx.set_func(FwFunc::SendDispatch);
            ctx.set_bit(64, 0).await;
            ctx.set_bit(64, 1).await;
            ctx.set_bit(64, 3).await;
            let run = ctx.update(64, 0).await;
            assert_eq!(run, 2);
            let run = ctx.update(64, 2).await;
            assert_eq!(run, 0);
            let run = ctx.update(64, 3).await;
            assert_eq!(run, 1);
        });
        rig.run(200);
        assert_eq!(rig.sp.peek(64), 0);
        // Each RMW is exactly one instruction and one memory access.
        let p = rig.core.profile().func(FwFunc::SendDispatch);
        assert_eq!(p.instructions, 6);
        assert_eq!(p.mem_accesses, 6);
    }

    #[test]
    fn lock_charges_lock_bucket() {
        let mut rig = Rig::new();
        let ctx = rig.ctx();
        rig.core.install(async move {
            ctx.set_func(FwFunc::RecvFrame);
            ctx.lock(128).await;
            ctx.alu(2).await; // critical section -> RecvFrame
            ctx.unlock(128).await;
        });
        rig.run(200);
        let p = rig.core.profile();
        assert!(p.func(FwFunc::RecvLock).instructions >= 3);
        assert_eq!(p.func(FwFunc::RecvFrame).instructions, 2);
        assert_eq!(rig.sp.peek(128), 0, "lock released");
    }

    #[test]
    fn contended_lock_spins_until_released() {
        // Two cores on one crossbar contend for a lock.
        let mut xbar = Crossbar::new(2, 4);
        let mut sp = Scratchpad::new(4096, 4);
        let mut imem = InstrMemory::new();
        let mut c0 = Core::new(0, ICacheConfig::default(), CodeLayout::new());
        let mut c1 = Core::new(1, ICacheConfig::default(), CodeLayout::new());
        let ctx0 = CoreCtx::new(c0.slot(), 0);
        let ctx1 = CoreCtx::new(c1.slot(), 1);
        // Both increment a shared counter 50 times under the lock.
        const LOCK: u32 = 0;
        const COUNTER: u32 = 4;
        let body = |ctx: CoreCtx| async move {
            ctx.set_func(FwFunc::SendFrame);
            for _ in 0..50 {
                ctx.lock(LOCK).await;
                let v = ctx.load(COUNTER).await;
                ctx.store(COUNTER, v + 1).await;
                ctx.unlock(LOCK).await;
            }
        };
        c0.install(body(ctx0));
        c1.install(body(ctx1));
        for _ in 0..100_000 {
            if c0.halted() && c1.halted() {
                break;
            }
            xbar.tick(&mut sp);
            c0.tick(&mut xbar, &mut imem);
            c1.tick(&mut xbar, &mut imem);
        }
        assert!(c0.halted() && c1.halted(), "deadlock or livelock");
        assert_eq!(sp.peek(COUNTER), 100, "lost update under lock");
    }

    #[test]
    fn ipc_is_at_most_one() {
        let mut rig = Rig::new();
        let ctx = rig.ctx();
        rig.core.install(async move {
            ctx.set_func(FwFunc::SendFrame);
            for _ in 0..20 {
                ctx.alu(4).await;
                ctx.load(0).await;
                ctx.store(4, 1).await;
                ctx.branch_miss().await;
            }
        });
        let ticks = rig.run(10_000);
        let instr = rig.core.profile().total(|f| f.instructions);
        assert!(instr <= ticks);
        // And cycle accounting is complete: buckets sum to ticks, except
        // the final tick in which the future returned `Ready`.
        let cycles = rig.core.profile().total(|f| f.total_cycles());
        assert!(ticks - cycles <= 1, "ticks={ticks} cycles={cycles}");
    }
}

#[cfg(test)]
mod attribution_tests {
    use super::*;
    use crate::ctx::CoreCtx;
    use crate::func::{FwFunc, StallBucket};
    use nicsim_mem::Scratchpad;

    fn rig() -> (Core, Crossbar, Scratchpad, InstrMemory) {
        (
            Core::new(0, ICacheConfig::default(), CodeLayout::new()),
            Crossbar::new(1, 4),
            Scratchpad::new(4096, 4),
            InstrMemory::new(),
        )
    }

    fn run(core: &mut Core, xbar: &mut Crossbar, sp: &mut Scratchpad, imem: &mut InstrMemory) {
        for _ in 0..50_000 {
            if core.halted() {
                return;
            }
            xbar.tick(sp);
            core.tick(xbar, imem);
        }
        panic!("did not halt");
    }

    #[test]
    fn work_is_attributed_to_the_active_function() {
        let (mut core, mut xbar, mut sp, mut imem) = rig();
        let ctx = CoreCtx::new(core.slot(), 0);
        core.install(async move {
            ctx.set_func(FwFunc::FetchSendBd);
            ctx.alu(10).await;
            ctx.set_func(FwFunc::RecvFrame);
            ctx.alu(20).await;
            ctx.load(0).await;
            ctx.set_func(FwFunc::Idle);
            ctx.alu(5).await;
        });
        run(&mut core, &mut xbar, &mut sp, &mut imem);
        let p = core.profile();
        assert_eq!(p.func(FwFunc::FetchSendBd).instructions, 10);
        assert_eq!(p.func(FwFunc::RecvFrame).instructions, 21);
        assert_eq!(p.func(FwFunc::RecvFrame).mem_accesses, 1);
        assert_eq!(p.func(FwFunc::Idle).instructions, 5);
        assert_eq!(p.func(FwFunc::SendFrame).instructions, 0);
    }

    #[test]
    fn icache_misses_are_charged_on_function_entry() {
        let (mut core, mut xbar, mut sp, mut imem) = rig();
        let ctx = CoreCtx::new(core.slot(), 0);
        core.install(async move {
            // Alternate between two handlers: first pass cold, later
            // passes hit in the 8 KB cache.
            for _ in 0..3 {
                ctx.set_func(FwFunc::SendFrame);
                ctx.alu(100).await;
                ctx.set_func(FwFunc::RecvFrame);
                ctx.alu(100).await;
            }
        });
        run(&mut core, &mut xbar, &mut sp, &mut imem);
        let p = core.profile();
        let imiss = p.bucket_cycles(StallBucket::IMiss);
        assert!(imiss > 0, "cold misses must be charged");
        // 100 instructions touch ~13 lines; fills are ~4 cycles; all
        // I-miss time must come from the two cold passes only.
        assert!(imiss < 2 * 14 * 8, "warm passes must hit: imiss={imiss}");
        assert!(core.icache().hits() > core.icache().misses());
    }

    #[test]
    fn reset_stats_clears_profile_but_keeps_cache_contents() {
        let (mut core, mut xbar, mut sp, mut imem) = rig();
        let ctx = CoreCtx::new(core.slot(), 0);
        core.install(async move {
            ctx.set_func(FwFunc::SendFrame);
            ctx.alu(50).await;
        });
        run(&mut core, &mut xbar, &mut sp, &mut imem);
        core.reset_stats();
        assert_eq!(core.profile().total(|f| f.instructions), 0);
        assert_eq!(core.engine_stats().ticks, 0);
        // Cache contents survive: re-running through the same region
        // misses at most on the few lines the first pass never touched.
        let ctx = CoreCtx::new(core.slot(), 0);
        core.install(async move {
            ctx.set_func(FwFunc::SendFrame);
            ctx.alu(50).await;
        });
        run(&mut core, &mut xbar, &mut sp, &mut imem);
        assert!(
            core.icache().misses() <= 8,
            "warm region should mostly hit, got {} misses",
            core.icache().misses()
        );
    }

    #[test]
    fn skip_cycles_matches_ticking_through_a_busy_span() {
        // Two identical cores run the same firmware; one is fast-forwarded
        // through the interior of a Busy span, the other ticks densely.
        // Profiles and engine stats must match exactly.
        let build = || {
            let (mut core, xbar, sp, imem) = rig();
            let ctx = CoreCtx::new(core.slot(), 0);
            core.install(async move {
                ctx.set_func(FwFunc::SendFrame);
                ctx.alu(12).await;
                ctx.branch_miss().await;
                ctx.alu(3).await;
            });
            (core, xbar, sp, imem)
        };
        let (mut dense, mut dx, mut dsp, mut dim) = build();
        let (mut fast, mut fx, mut fsp, mut fim) = build();

        // First tick enters Busy { exec: 12 } and charges one cycle.
        dx.tick(&mut dsp);
        dense.tick(&mut dx, &mut dim);
        fx.tick(&mut fsp);
        fast.tick(&mut fx, &mut fim);
        assert!(fast.wake_in() > 1, "core should be mid-Busy");

        // Skip all but the final Busy cycle on the fast core; tick the
        // dense core the same number of times.
        let skip = fast.wake_in() - 1;
        fast.skip_cycles(skip);
        for _ in 0..skip {
            dx.tick(&mut dsp);
            dense.tick(&mut dx, &mut dim);
        }
        assert_eq!(fast.wake_in(), 1);
        assert_eq!(fast.profile(), dense.profile());
        assert_eq!(fast.engine_stats(), dense.engine_stats());

        // Both finish identically.
        run(&mut dense, &mut dx, &mut dsp, &mut dim);
        run(&mut fast, &mut fx, &mut fsp, &mut fim);
        assert_eq!(fast.profile(), dense.profile());
        assert_eq!(fast.engine_stats(), dense.engine_stats());
    }

    #[test]
    fn halted_wake_is_never_and_skip_counts_halted_ticks() {
        let (mut core, mut xbar, mut sp, mut imem) = rig();
        let ctx = CoreCtx::new(core.slot(), 0);
        core.install(async move {
            ctx.alu(1).await;
        });
        run(&mut core, &mut xbar, &mut sp, &mut imem);
        assert!(core.halted());
        assert_eq!(core.wake_in(), u64::MAX);
        let before = core.engine_stats();
        core.skip_cycles(1000);
        let after = core.engine_stats();
        assert_eq!(after.ticks, before.ticks + 1000);
        assert_eq!(after.halted_ticks, before.halted_ticks + 1000);
    }

    #[test]
    fn wfi_parks_until_wake_and_charges_dispatch_cost() {
        let (mut core, mut xbar, mut sp, mut imem) = rig();
        let ctx = CoreCtx::new(core.slot(), 0);
        core.install(async move {
            ctx.set_func(FwFunc::SendFrame);
            ctx.alu(2).await;
            ctx.wfi().await;
            ctx.alu(3).await;
        });
        // Tick until the core parks.
        for _ in 0..20 {
            if core.parked() {
                break;
            }
            xbar.tick(&mut sp);
            core.tick(&mut xbar, &mut imem);
        }
        assert!(core.parked());
        assert_eq!(core.wake_in(), u64::MAX, "no doorbell: inert");
        let instr_at_park = core.profile().total(|f| f.instructions);
        assert_eq!(instr_at_park, 3, "alu(2) + the wfi instruction");

        // Parked ticks accumulate idle time but no instructions.
        let before = core.profile().total(|f| f.total_cycles());
        for _ in 0..5 {
            xbar.tick(&mut sp);
            core.tick(&mut xbar, &mut imem);
        }
        assert!(core.parked());
        assert_eq!(core.engine_stats().parked_ticks, 5);
        assert_eq!(core.profile().total(|f| f.total_cycles()), before + 5);

        // Doorbell: next wake is immediate, the resume costs exactly the
        // 2-cycle dispatch plus the post-wake work, with no extra
        // instructions charged for the wakeup itself.
        core.raise_wake();
        assert_eq!(core.wake_in(), 1);
        let cycles_at_wake = core.profile().total(|f| f.total_cycles());
        run(&mut core, &mut xbar, &mut sp, &mut imem);
        let cycles = core.profile().total(|f| f.total_cycles());
        assert_eq!(
            cycles - cycles_at_wake,
            u64::from(WAKE_DISPATCH_CYCLES) + 3,
            "2-cycle wake dispatch + alu(3)"
        );
        assert_eq!(core.profile().total(|f| f.instructions), instr_at_park + 3);
    }

    #[test]
    fn parked_skip_matches_dense_ticking() {
        let build = || {
            let (mut core, xbar, sp, imem) = rig();
            let ctx = CoreCtx::new(core.slot(), 0);
            core.install(async move {
                ctx.set_func(FwFunc::RecvFrame);
                ctx.alu(4).await;
                ctx.wfi().await;
                ctx.alu(2).await;
            });
            (core, xbar, sp, imem)
        };
        let (mut dense, mut dx, mut dsp, mut dim) = build();
        let (mut fast, mut fx, mut fsp, mut fim) = build();
        for _ in 0..10 {
            dx.tick(&mut dsp);
            dense.tick(&mut dx, &mut dim);
            fx.tick(&mut fsp);
            fast.tick(&mut fx, &mut fim);
        }
        assert!(dense.parked() && fast.parked());

        // The doorbell fires 100 cycles later: the fast core skips the
        // parked span, the dense core ticks through it. Everything
        // observable must match, including the preserved wake cost.
        fast.skip_cycles(100);
        for _ in 0..100 {
            dx.tick(&mut dsp);
            dense.tick(&mut dx, &mut dim);
        }
        assert_eq!(fast.profile(), dense.profile());
        assert_eq!(fast.engine_stats(), dense.engine_stats());

        dense.raise_wake();
        fast.raise_wake();
        assert_eq!(fast.wake_in(), dense.wake_in());
        run(&mut dense, &mut dx, &mut dsp, &mut dim);
        run(&mut fast, &mut fx, &mut fsp, &mut fim);
        assert_eq!(fast.profile(), dense.profile());
        assert_eq!(fast.engine_stats(), dense.engine_stats());
    }

    #[test]
    fn wake_before_park_is_consumed_at_the_next_wfi() {
        // A doorbell that fires while the core is still busy is sticky:
        // the subsequent wfi completes after one spurious wake.
        let (mut core, mut xbar, mut sp, mut imem) = rig();
        let ctx = CoreCtx::new(core.slot(), 0);
        core.install(async move {
            ctx.set_func(FwFunc::SendFrame);
            ctx.alu(8).await;
            ctx.wfi().await;
        });
        xbar.tick(&mut sp);
        core.tick(&mut xbar, &mut imem);
        assert!(!core.parked(), "mid-Busy");
        core.raise_wake();
        run(&mut core, &mut xbar, &mut sp, &mut imem);
        assert!(core.halted(), "sticky wake let the wfi complete");
    }

    #[test]
    fn halted_core_accumulates_halted_ticks() {
        let (mut core, mut xbar, mut sp, mut imem) = rig();
        let ctx = CoreCtx::new(core.slot(), 0);
        core.install(async move {
            ctx.alu(1).await;
        });
        for _ in 0..100 {
            xbar.tick(&mut sp);
            core.tick(&mut xbar, &mut imem);
        }
        assert!(core.halted());
        let st = core.engine_stats();
        assert!(st.halted_ticks > 90);
        assert_eq!(st.ticks, 100);
    }
}
