//! The NIC's processing cores (paper §4) and the machinery that lets
//! firmware run on them.
//!
//! Each core is a single-issue, 5-stage, in-order pipeline implementing a
//! MIPS-R4000-like subset plus the paper's two atomic read-modify-write
//! instructions (`set` and `update`). The timing rules modeled here are
//! exactly the ones the paper calls out:
//!
//! * one instruction issues per cycle at most;
//! * a scratchpad access takes a minimum of 2 cycles (crossbar traverse +
//!   bank access), so **every load stalls at least one cycle**; bank
//!   conflicts add more;
//! * **a single store may be buffered** in the MEM stage, so stores do not
//!   stall unless a second memory operation arrives while the buffer is
//!   still draining;
//! * statically mispredicted **branches annul one issue slot**;
//! * instruction fetch goes through a per-core 8 KB 2-way I-cache; misses
//!   stall the core while the line fills from the shared 128-bit
//!   instruction-memory interface.
//!
//! Firmware is ordinary Rust `async` code written against [`CoreCtx`]: the
//! core engine polls the firmware future only when the operation it issued
//! has been charged (and, for loads, when the data actually returned from
//! the simulated scratchpad), which makes execution *execution-driven* —
//! lock contention and ordering races unfold at their real cycle times.
//! Per-function cycle/instruction/access profiles (the raw material of
//! Tables 1, 3, 5 and 6) are collected in [`CoreProfile`].

pub mod ctx;
pub mod engine;
pub mod func;
pub mod layout;
pub mod slot;

pub use ctx::CoreCtx;
pub use engine::Core;
pub use func::{CoreProfile, FuncProfile, FwFunc, StallBucket};
pub use layout::CodeLayout;
pub use slot::{CoreSlot, OpEvent, PendingOp, SharedSlot};
