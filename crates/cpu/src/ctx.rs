//! The firmware programming interface.
//!
//! [`CoreCtx`] is what NIC firmware is written against: a handle to one
//! core that exposes the machine's operations as `async` methods. Every
//! call costs what the real instruction sequence would cost — `alu(n)`
//! issues `n` single-cycle instructions, `load` performs a real 2-cycle
//! (plus conflicts) scratchpad transaction, `set_bit`/`update` are the
//! paper's single-instruction atomic RMWs, and `lock`/`unlock` build a
//! test-and-set spinlock whose acquire/spin cost is charged to the
//! direction's locking bucket (Table 5's "Send Locking"/"Receive
//! Locking" rows).

use crate::func::FwFunc;
use crate::slot::{OpEvent, PendingOp, SharedSlot};
use nicsim_mem::{SpOp, SpRequest};
use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Handle through which firmware executes on a simulated core.
#[derive(Clone)]
pub struct CoreCtx {
    slot: SharedSlot,
    core_id: usize,
}

/// Future for one machine operation: deposits the op on first poll,
/// resolves with the engine's response on the next poll.
pub struct Op {
    slot: SharedSlot,
    op: Option<PendingOp>,
}

impl Future for Op {
    type Output = u32;

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<u32> {
        if let Some(op) = self.op.take() {
            let mut slot = self.slot.borrow_mut();
            debug_assert!(slot.pending.is_none(), "engine polled with op pending");
            slot.pending = Some(op);
            return Poll::Pending;
        }
        let mut slot = self.slot.borrow_mut();
        match slot.response.take() {
            Some(v) => Poll::Ready(v),
            // The engine only polls when the response is ready, but a
            // future may be polled spuriously by combinators; stay pending.
            None => Poll::Pending,
        }
    }
}

impl CoreCtx {
    /// Create a context bound to `slot` for core `core_id`.
    pub fn new(slot: SharedSlot, core_id: usize) -> CoreCtx {
        CoreCtx { slot, core_id }
    }

    /// The core this context executes on.
    pub fn core_id(&self) -> usize {
        self.core_id
    }

    fn issue(&self, op: PendingOp) -> Op {
        Op {
            slot: self.slot.clone(),
            op: Some(op),
        }
    }

    fn trace(&self, ev: OpEvent) {
        if let Some(t) = self.slot.borrow_mut().trace.as_mut() {
            t.push(ev);
        }
    }

    /// Switch the profiling tag; subsequent work is attributed to `f`.
    /// Returns the previous tag so handlers can restore it.
    pub fn set_func(&self, f: FwFunc) -> FwFunc {
        std::mem::replace(&mut self.slot.borrow_mut().func, f)
    }

    /// The current profiling tag.
    pub fn func(&self) -> FwFunc {
        self.slot.borrow().func
    }

    /// Execute `n` ALU/control instructions. `alu(0)` is free.
    pub async fn alu(&self, n: u32) {
        if n == 0 {
            return;
        }
        self.trace(OpEvent::Alu(n));
        self.issue(PendingOp::Alu(n)).await;
    }

    /// Execute a correctly-predicted branch (1 cycle).
    pub async fn branch(&self) {
        self.trace(OpEvent::Branch { mispredict: false });
        self.issue(PendingOp::Branch { mispredict: false }).await;
    }

    /// Execute a statically mispredicted branch (1 cycle + 1 annulled
    /// issue slot).
    pub async fn branch_miss(&self) {
        self.trace(OpEvent::Branch { mispredict: true });
        self.issue(PendingOp::Branch { mispredict: true }).await;
    }

    /// Wait for interrupt: issue one instruction, then park the core
    /// until its wake line is raised by a doorbell (interrupt dispatch
    /// mode only — polling firmware never calls this). Traced as a
    /// single ALU instruction for the ILP expansion.
    pub async fn wfi(&self) {
        self.trace(OpEvent::Alu(1));
        self.issue(PendingOp::Wfi).await;
    }

    /// Load a 32-bit word from scratchpad byte address `addr`.
    pub async fn load(&self, addr: u32) -> u32 {
        self.trace(OpEvent::Load);
        self.issue(PendingOp::Mem(SpRequest {
            addr,
            op: SpOp::Read,
        }))
        .await
    }

    /// Store `val` to scratchpad byte address `addr` (buffered; does not
    /// stall unless the store buffer is busy).
    pub async fn store(&self, addr: u32, val: u32) {
        self.trace(OpEvent::Store);
        self.issue(PendingOp::Mem(SpRequest {
            addr,
            op: SpOp::Write(val),
        }))
        .await;
    }

    /// Atomic test-and-set on `addr`; returns the old value (0 means the
    /// caller acquired the location).
    pub async fn test_and_set(&self, addr: u32) -> u32 {
        self.trace(OpEvent::Rmw);
        self.issue(PendingOp::Mem(SpRequest {
            addr,
            op: SpOp::TestAndSet,
        }))
        .await
    }

    /// The paper's `set` instruction: atomically set bit `bit_index` of
    /// the bit array at `base` (byte address). A single instruction, a
    /// single scratchpad transaction.
    pub async fn set_bit(&self, base: u32, bit_index: u32) {
        let addr = base + (bit_index / 32) * 4;
        self.trace(OpEvent::Rmw);
        self.issue(PendingOp::Mem(SpRequest {
            addr,
            op: SpOp::SetBit((bit_index % 32) as u8),
        }))
        .await;
    }

    /// The paper's `update` instruction: examine the aligned 32-bit word
    /// of the bit array at `base` containing `bit_index`, atomically clear
    /// the run of consecutive set bits starting there, and return the run
    /// length (0 if the starting bit was clear). At most one word is
    /// examined per invocation, as in the paper.
    pub async fn update(&self, base: u32, bit_index: u32) -> u32 {
        let addr = base + (bit_index / 32) * 4;
        self.trace(OpEvent::Rmw);
        self.issue(PendingOp::Mem(SpRequest {
            addr,
            op: SpOp::Update {
                start_bit: (bit_index % 32) as u8,
            },
        }))
        .await
    }

    /// Acquire the spinlock at `addr`, charging acquire and spin work to
    /// the current function's lock bucket. The sequence per attempt is
    /// address setup + test-and-set + branch on the result.
    pub async fn lock(&self, addr: u32) {
        let prev = self.set_func(self.func().lock_bucket());
        self.alu(1).await; // lock address setup
        loop {
            let old = self.test_and_set(addr).await;
            if old == 0 {
                self.branch().await; // fall through: acquired
                break;
            }
            // Spin: branch back and retry.
            self.branch_miss().await;
            self.alu(1).await;
        }
        self.set_func(prev);
    }

    /// Release the spinlock at `addr` (a single store).
    pub async fn unlock(&self, addr: u32) {
        let prev = self.set_func(self.func().lock_bucket());
        self.store(addr, 0).await;
        self.set_func(prev);
    }

    /// Try to acquire the spinlock once; returns whether it was acquired.
    pub async fn try_lock(&self, addr: u32) -> bool {
        let prev = self.set_func(self.func().lock_bucket());
        self.alu(1).await;
        let old = self.test_and_set(addr).await;
        self.branch().await;
        self.set_func(prev);
        old == 0
    }
}

impl std::fmt::Debug for CoreCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreCtx")
            .field("core_id", &self.core_id)
            .finish()
    }
}
