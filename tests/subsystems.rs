//! Cross-crate subsystem tests that exercise component seams the unit
//! tests inside each crate cannot reach.

use nicsim_assists::{DmaConfig, DmaRead};
use nicsim_firmware::map::{self, MemMap};
use nicsim_host::{Driver, DriverConfig, HostLayout, HostMemory, Mailbox};
use nicsim_mem::{Crossbar, FrameMemory, FrameMemoryConfig, Scratchpad, SpOp, SpRequest, StreamId};
use nicsim_net::frame::{build_udp_frame, validate_frame};
use nicsim_sim::Ps;

#[test]
fn dma_read_cycles_its_ring_many_times() {
    // Push 3x the ring depth of descriptor-fetch commands through the
    // engine, simulating the firmware's producer, and check every copy.
    let mut sp = Scratchpad::new(256 * 1024, 4);
    let mut xbar = Crossbar::new(1, 4);
    let mut host = HostMemory::new(1 << 20);
    let mut fm = FrameMemory::new(FrameMemoryConfig::default());
    let entries = 8u32;
    let cfg = DmaConfig {
        port: 0,
        engine: 0,
        cmd_ring: 0x1000,
        cmd_entries: entries,
        prod_addr: 0x100,
        done_addr: 0x104,
    };
    let mut eng = DmaRead::new(cfg);
    let total = entries * 3;
    for i in 0..total {
        host.write_u32(0x8000 + i * 4, 0xbeef_0000 | i);
    }
    let mut now = Ps::ZERO;
    let mut issued = 0u32;
    for _ in 0..40_000 {
        now += Ps(5000);
        // Produce while there is claim-side room (mimic the firmware:
        // the claim follows the done counter here).
        let done = sp.peek(0x104);
        if issued < total && issued.wrapping_sub(done) < entries {
            let base = 0x1000 + (issued % entries) * 16;
            sp.poke(base, 0x8000 + issued * 4); // host src
            sp.poke(base + 4, 0x2000 + issued * 4); // scratchpad dst
            sp.poke(base + 8, 4 | nicsim_assists::cmd::FLAG_SP);
            sp.poke(base + 12, issued);
            issued += 1;
            sp.poke(0x100, issued);
        }
        xbar.tick(&mut sp);
        eng.tick(now, &mut xbar, &sp, &host, &mut fm);
        for c in fm.advance(now) {
            eng.on_sdram_complete(c.tag);
        }
        if sp.peek(0x104) == total {
            break;
        }
    }
    assert_eq!(sp.peek(0x104), total, "all commands must complete");
    for i in 0..total {
        assert_eq!(sp.peek(0x2000 + i * 4), 0xbeef_0000 | i, "copy {i}");
    }
}

#[test]
fn driver_reassembles_every_posted_frame() {
    // The driver splits each frame into header and payload fragments;
    // stitching BD pairs back together must reproduce the frame bytes.
    let layout = HostLayout::default();
    let mut mem = HostMemory::new(layout.memory_size());
    let mut drv = Driver::new(
        DriverConfig {
            udp_payload: 333,
            ..DriverConfig::default()
        },
        layout,
    );
    drv.tick(Ps::ZERO, &mut mem);
    let writes = drv.take_mailbox_writes();
    let bds = writes
        .iter()
        .find(|w| w.reg == Mailbox::SendBdProd)
        .unwrap()
        .value;
    assert!(bds >= 2 && bds % 2 == 0);
    for pair in 0..bds / 2 {
        let bd0 = layout.send_bd_ring + pair * 32;
        let bd1 = bd0 + 16;
        let mut frame = mem.read(mem.read_u32(bd0), mem.read_u32(bd0 + 4)).to_vec();
        frame.extend_from_slice(mem.read(mem.read_u32(bd1), mem.read_u32(bd1 + 4)));
        frame.extend_from_slice(&[0u8; 4]);
        let info = validate_frame(&frame).unwrap();
        assert_eq!(info.seq, pair);
        assert_eq!(info.udp_payload, 333);
    }
}

#[test]
fn frame_memory_handles_interleaved_duplex_streams() {
    // Model the real usage: MAC RX writes while MAC TX reads, DMA engines
    // on both sides, contents never mix.
    let mut fm = FrameMemory::new(FrameMemoryConfig::default());
    let mut now = Ps::ZERO;
    let frames: Vec<Vec<u8>> = (0..16u32).map(|i| build_udp_frame(i, 700)).collect();
    for (i, f) in frames.iter().enumerate() {
        now += Ps(500);
        let base = (i as u32) * 2048;
        fm.submit_write(StreamId::DmaRead, base, f, i as u64, now);
        fm.submit_write(StreamId::MacRx, 0x40_0000 + base, f, 100 + i as u64, now);
    }
    fm.advance(Ps::from_ms(1));
    now = Ps::from_ms(1);
    for (i, f) in frames.iter().enumerate() {
        now += Ps(500);
        let base = (i as u32) * 2048;
        fm.submit_read(StreamId::MacTx, base, f.len() as u32, i as u64, now);
        fm.submit_read(
            StreamId::DmaWrite,
            0x40_0000 + base,
            f.len() as u32,
            100 + i as u64,
            now,
        );
    }
    let done = fm.advance(Ps::from_ms(2));
    assert_eq!(done.len(), 32);
    for c in done {
        let i = (c.tag % 100) as usize;
        assert_eq!(
            c.data.as_deref(),
            Some(&frames[i][..]),
            "stream {:?}",
            c.stream
        );
    }
}

#[test]
fn scratchpad_rmw_sequences_model_the_ordering_protocol() {
    // A miniature of the firmware's ready/commit protocol over the raw
    // scratchpad ops, including bit-array word crossings.
    let mut sp = Scratchpad::new(1024, 4);
    let bits = 128u32;
    let mut commit = 0u32;
    // Frames complete in a scrambled order; commits only advance over
    // the in-order prefix.
    let order = [3u32, 0, 1, 5, 2, 4, 7, 6, 30, 31, 32, 33, 8];
    let mut committed = Vec::new();
    for &f in &order {
        sp.execute(SpRequest {
            addr: bits + (f / 32) * 4,
            op: SpOp::SetBit((f % 32) as u8),
        });
        loop {
            let run = sp.execute(SpRequest {
                addr: bits + (commit / 32) * 4,
                op: SpOp::Update {
                    start_bit: (commit % 32) as u8,
                },
            });
            if run == 0 {
                break;
            }
            for k in 0..run {
                committed.push(commit + k);
            }
            commit += run;
        }
    }
    // Frames 0..=7 commit once 6 lands; 8 commits immediately after;
    // 30..=33 stay pending (frames 9..29 missing).
    assert_eq!(committed, vec![0, 1, 2, 3, 4, 5, 6, 7, 8]);
    assert_eq!(commit, 9);
    // The pending bits survive for the eventual commit.
    assert_ne!(sp.peek(bits), 0x0, "bits 30,31 still set");
    assert_ne!(sp.peek(bits + 4), 0, "bits 32,33 still set");
}

#[test]
fn memory_map_counters_are_bank_spread() {
    // The hot progress counters should not all collide on one bank,
    // or the crossbar would serialize the dispatch loop's polling.
    let m = MemMap::new();
    let sp = Scratchpad::new(256 * 1024, 4);
    let hot = [
        m.sb_mailbox_prod,
        m.dmard_done,
        m.mactx_done,
        m.macrx_prod,
        m.dmawr_done,
        m.rb_mailbox_prod,
    ];
    let banks: std::collections::HashSet<usize> = hot.iter().map(|&a| sp.bank_of(a)).collect();
    assert!(banks.len() >= 3, "hot counters bunched on {banks:?}");
}

#[test]
#[allow(clippy::assertions_on_constants)] // the relations, not the values, are under test
fn map_constants_are_mutually_consistent() {
    // Structural relations other components rely on.
    assert_eq!(map::SLOTS % 32, 0, "bit arrays are whole words");
    assert!(map::MACTX_RING >= map::SLOTS, "MAC TX ring cannot overflow");
    assert!(map::STAGING >= map::SLOTS, "staging outlives slot reuse");
    assert!(
        map::DMA_RING >= 2 * map::SLOTS + map::BD_CACHE / map::SEND_BD_BATCH,
        "DMA ring must exceed its structural outstanding bound"
    );
    assert!(map::BD_CACHE.is_multiple_of(map::SEND_BD_BATCH));
    assert!(map::BD_CACHE.is_multiple_of(map::RECV_BD_BATCH));
}
