//! Cross-crate integration tests: the full NIC moving real frames.
//!
//! These exercise the complete system — driver, DMA engines, scratchpad
//! firmware, frame memory, MAC, wire — and check the end-to-end
//! contracts the paper's design guarantees: byte-exact delivery,
//! total frame ordering, and conservation of frames.

use nicsim::{FwMode, NicConfig, NicSystem};
use nicsim_sim::Ps;

fn small(cfg: NicConfig) -> NicConfig {
    cfg.to_builder()
        .cores(cfg.cores.min(2))
        .cpu_mhz(500)
        .build()
        .unwrap()
}

#[test]
fn duplex_traffic_is_validated_end_to_end() {
    let mut sys = NicSystem::build(small(NicConfig::default()))
        .finish()
        .unwrap();
    let s = sys.run_measured(Ps::from_us(200), Ps::from_us(300));
    assert!(s.tx_frames > 50, "tx {}", s.tx_frames);
    assert!(s.rx_frames > 50, "rx {}", s.rx_frames);
    s.assert_clean();
}

#[test]
fn all_three_firmware_modes_work() {
    for mode in [FwMode::Ideal, FwMode::SoftwareOnly, FwMode::RmwEnhanced] {
        let cfg = NicConfig::builder()
            .cores(if mode == FwMode::Ideal { 1 } else { 2 })
            .cpu_mhz(500)
            .mode(mode)
            .build()
            .unwrap();
        let mut sys = NicSystem::build(cfg).finish().unwrap();
        let s = sys.run_measured(Ps::from_us(200), Ps::from_us(300));
        assert!(s.tx_frames > 10, "{mode:?}: tx {}", s.tx_frames);
        assert!(s.rx_frames > 10, "{mode:?}: rx {}", s.rx_frames);
        s.assert_clean();
    }
}

#[test]
fn frames_are_never_reordered_even_under_pressure() {
    // A slow NIC under line-rate input drops frames (receiver overrun)
    // but must never reorder or corrupt what it does deliver.
    let cfg = NicConfig::builder().cores(1).cpu_mhz(150).build().unwrap();
    let mut sys = NicSystem::build(cfg).finish().unwrap();
    let s = sys.run_measured(Ps::from_ms(1), Ps::from_ms(1));
    assert!(s.rx_mac_drops > 0, "this config should overrun");
    assert_eq!(s.rx_out_of_order, 0);
    assert_eq!(s.rx_corrupt, 0);
    assert_eq!(s.tx_errors, 0);
}

#[test]
fn small_frames_work_end_to_end() {
    for payload in [18usize, 100, 700] {
        let cfg = small(NicConfig::default())
            .to_builder()
            .udp_payload(payload)
            .build()
            .unwrap();
        let mut sys = NicSystem::build(cfg).finish().unwrap();
        let s = sys.run_measured(Ps::from_us(150), Ps::from_us(200));
        assert!(s.rx_frames > 20, "payload {payload}: rx {}", s.rx_frames);
        s.assert_clean();
    }
}

#[test]
fn unidirectional_send_only() {
    let cfg = small(NicConfig::default())
        .to_builder()
        .recv_enabled(false)
        .build()
        .unwrap();
    let mut sys = NicSystem::build(cfg).finish().unwrap();
    let s = sys.run_measured(Ps::from_us(200), Ps::from_us(300));
    assert!(s.tx_frames > 50);
    assert_eq!(s.rx_frames, 0);
    s.assert_clean();
}

#[test]
fn unidirectional_receive_only() {
    let cfg = small(NicConfig::default())
        .to_builder()
        .send_enabled(false)
        .build()
        .unwrap();
    let mut sys = NicSystem::build(cfg).finish().unwrap();
    let s = sys.run_measured(Ps::from_us(200), Ps::from_us(300));
    assert_eq!(s.tx_frames, 0);
    assert!(s.rx_frames > 50);
    s.assert_clean();
}

#[test]
fn offered_load_is_respected() {
    let cfg = small(NicConfig::default())
        .to_builder()
        .offered_tx_fps(Some(100_000.0))
        .offered_rx_fps(Some(100_000.0))
        .build()
        .unwrap();
    let mut sys = NicSystem::build(cfg).finish().unwrap();
    let s = sys.run_measured(Ps::from_ms(1), Ps::from_ms(2));
    s.assert_clean();
    let fps = s.tx_frames as f64 / s.window.as_secs_f64();
    assert!(
        (80_000.0..120_000.0).contains(&fps),
        "offered 100k fps, measured {fps}"
    );
}

#[test]
fn firmware_halts_on_stop_flag() {
    let mut sys = NicSystem::build(small(NicConfig::default()))
        .finish()
        .unwrap();
    sys.run_until(Ps::from_us(100));
    sys.stop(Ps::from_ms(10));
    assert!(sys.halted());
}

#[test]
fn throughput_scales_with_cores() {
    let gbps = |cores: usize| {
        let cfg = NicConfig::builder()
            .cores(cores)
            .cpu_mhz(150)
            .build()
            .unwrap();
        let mut sys = NicSystem::build(cfg).finish().unwrap();
        let s = sys.run_measured(Ps::from_ms(1), Ps::from_ms(1));
        s.total_udp_gbps()
    };
    let one = gbps(1);
    let four = gbps(4);
    assert!(
        four > one * 1.8,
        "4 cores ({four:.2}) should far outrun 1 core ({one:.2})"
    );
}

#[test]
fn rmw_mode_is_at_least_as_fast_as_software() {
    let run = |mode| {
        let cfg = NicConfig::builder()
            .cores(2)
            .cpu_mhz(250)
            .mode(mode)
            .build()
            .unwrap();
        let mut sys = NicSystem::build(cfg).finish().unwrap();
        sys.run_measured(Ps::from_ms(1), Ps::from_ms(1))
            .total_udp_gbps()
    };
    let sw = run(FwMode::SoftwareOnly);
    let rmw = run(FwMode::RmwEnhanced);
    assert!(
        rmw >= sw * 0.98,
        "RMW ({rmw:.2}) should not lose to software ({sw:.2})"
    );
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut sys = NicSystem::build(small(NicConfig::default()))
            .finish()
            .unwrap();
        let s = sys.run_measured(Ps::from_us(200), Ps::from_us(200));
        (
            s.tx_frames,
            s.rx_frames,
            s.profile.total(|p| p.instructions),
        )
    };
    assert_eq!(run(), run(), "simulation must be deterministic");
}

#[test]
fn trace_capture_produces_metadata_accesses() {
    let mut sys = NicSystem::build(small(NicConfig::default()))
        .probe(nicsim_mem::AccessTrace::with_limit(100_000))
        .finish()
        .unwrap();
    sys.run_until(Ps::from_us(200));
    let end = sys.map().end;
    let trace = sys.unwrap_probe();
    assert!(trace.len() > 1000, "got {} records", trace.len());
    // All addresses must be inside the scratchpad.
    assert!(trace.records().iter().all(|r| r.addr < end));
}

#[test]
fn ilp_capture_produces_events() {
    let cfg = NicConfig::ideal()
        .to_builder()
        .capture_ilp(true)
        .build()
        .unwrap();
    let mut sys = NicSystem::build(cfg).finish().unwrap();
    sys.run_until(Ps::from_us(300));
    let events = sys.take_ilp_trace().expect("ilp capture enabled");
    assert!(events.len() > 1000);
}
