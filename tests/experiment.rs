//! Integration tests for the experiment engine as exposed through the
//! `nicsim_repro` facade: validated configuration building, the unified
//! `Experiment::run` entry point, and the structured JSON results file.

use nicsim_repro::{ConfigError, Experiment, Json, NicConfig, NicSystem, Sweep, SCHEMA};

#[test]
fn builder_rejects_invalid_configurations() {
    assert_eq!(
        NicConfig::builder().cores(0).build(),
        Err(ConfigError::ZeroCores)
    );
    assert_eq!(
        NicConfig::builder().banks(0).build(),
        Err(ConfigError::ZeroBanks)
    );
    assert_eq!(
        NicConfig::builder().udp_payload(0).build(),
        Err(ConfigError::ZeroPayload)
    );
    assert_eq!(
        NicConfig::builder().udp_payload(1473).build(),
        Err(ConfigError::PayloadTooLarge { payload: 1473 })
    );
    assert_eq!(
        NicConfig::builder()
            .mode(nicsim_repro::FwMode::Ideal)
            .cores(6)
            .build(),
        Err(ConfigError::IdealMultiCore { cores: 6 })
    );
    let cfg = NicConfig::builder().cores(4).cpu_mhz(200).build().unwrap();
    assert_eq!(cfg.cores, 4);
    assert_eq!(cfg.cpu_mhz, 200);
}

#[test]
fn builder_finish_propagates_validation_errors() {
    let mut bad = NicConfig::default();
    bad.cores = 0;
    assert!(matches!(
        NicSystem::build(bad).finish(),
        Err(ConfigError::ZeroCores)
    ));
    assert!(NicSystem::build(NicConfig::default()).finish().is_ok());
}

#[test]
fn run_and_results_file_round_trip() {
    let out_dir = std::env::temp_dir().join(format!("nicsim-exp-test-{}", std::process::id()));
    let exp = Experiment::new("facade-smoke")
        .windows_ms(1, 1)
        .quiet()
        .jobs(2)
        .out_dir(&out_dir);

    let cfg = NicConfig::builder().cores(2).cpu_mhz(125).build().unwrap();
    let run = exp.run(cfg);
    assert_eq!(run.label, "run");
    assert!(run.stats.tx_frames > 0, "warmed-up run must move frames");

    let sweep = Sweep::new(cfg).axis("cores", [1usize, 2], |c, v| c.cores = v);
    let report = exp.sweep(&sweep);
    let path = exp.write(&report).expect("write results file");
    assert_eq!(path, out_dir.join("facade-smoke.json"));

    let text = std::fs::read_to_string(&path).expect("read results file");
    let doc = Json::parse(&text).expect("results file is valid JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
    assert_eq!(
        doc.get("experiment").and_then(Json::as_str),
        Some("facade-smoke")
    );
    let runs = doc.get("runs").and_then(Json::as_arr).expect("runs array");
    assert_eq!(runs.len(), 2);
    for (json, run) in runs.iter().zip(&report.runs) {
        assert_eq!(
            json.get("label").and_then(Json::as_str),
            Some(run.label.as_str())
        );
        let cores = json
            .get("config")
            .and_then(|c| c.get("cores"))
            .and_then(Json::as_f64);
        assert_eq!(cores, Some(run.config.cores as f64));
        let gbps = json
            .get("stats")
            .and_then(|s| s.get("total_udp_gbps"))
            .and_then(Json::as_f64);
        assert_eq!(gbps, Some(run.stats.total_udp_gbps()));
    }

    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn sweep_labels_expand_row_major() {
    let sweep = Sweep::new(NicConfig::default())
        .axis("cores", [1usize, 2], |c, v| c.cores = v)
        .axis("cpu_mhz", [100u64, 200], |c, v| c.cpu_mhz = v);
    let specs = sweep.runs().expect("valid sweep");
    let labels: Vec<&str> = specs.iter().map(|s| s.label.as_str()).collect();
    assert_eq!(
        labels,
        [
            "cores=1,cpu_mhz=100",
            "cores=1,cpu_mhz=200",
            "cores=2,cpu_mhz=100",
            "cores=2,cpu_mhz=200",
        ]
    );
}

#[test]
fn invalid_sweep_point_fails_before_running() {
    let sweep = Sweep::new(NicConfig::default()).axis("cores", [1usize, 0], |c, v| c.cores = v);
    assert_eq!(sweep.runs().unwrap_err(), ConfigError::ZeroCores);
    let exp = Experiment::new("facade-invalid").quiet();
    assert!(exp.try_sweep(&sweep).is_err());
}
