//! Property-based tests on the core data structures and invariants.

use nicsim_coherence::{Access, MesiSim};
use nicsim_ilp::{analyze, expand, BranchModel, IssueOrder, PipelineModel, ProcessorConfig, TraceOp};
use nicsim_mem::{Scratchpad, SpOp, SpRequest};
use nicsim_net::frame::{build_udp_frame, validate_frame};
use nicsim_sim::{EventHeap, Freq, Ps, RoundRobin};
use proptest::prelude::*;

proptest! {
    /// Any legal UDP payload survives the build/validate roundtrip with
    /// its sequence number intact.
    #[test]
    fn frame_roundtrip(seq in any::<u32>(), payload in 4usize..=1472) {
        let f = build_udp_frame(seq, payload);
        let info = validate_frame(&f).unwrap();
        prop_assert_eq!(info.seq, seq);
        prop_assert_eq!(info.udp_payload, payload);
        prop_assert!(f.len() >= 64 && f.len() <= 1518);
    }

    /// Flipping any payload byte is detected by validation.
    #[test]
    fn frame_corruption_detected(seq in any::<u32>(), payload in 32usize..=1472, flip in 0usize..1024) {
        let mut f = build_udp_frame(seq, payload);
        let idx = 14 + flip % (f.len() - 18); // anywhere in IP..payload
        f[idx] ^= 0x5a;
        prop_assert!(validate_frame(&f).is_err());
    }

    /// The scratchpad `update` instruction clears exactly the run it
    /// reports, and only that run.
    #[test]
    fn update_clears_exactly_the_run(word in any::<u32>(), start in 0u8..32) {
        let mut sp = Scratchpad::new(64, 1);
        sp.poke(0, word);
        let run = sp.execute(SpRequest { addr: 0, op: SpOp::Update { start_bit: start } });
        // Model the expected semantics.
        let mut expect_run = 0;
        let mut b = start as u32;
        while b < 32 && word & (1 << b) != 0 {
            expect_run += 1;
            b += 1;
        }
        prop_assert_eq!(run, expect_run);
        let mask = if expect_run == 0 {
            0
        } else if expect_run == 32 {
            u32::MAX
        } else {
            ((1u32 << expect_run) - 1) << start
        };
        prop_assert_eq!(sp.peek(0), word & !mask);
    }

    /// `set` then `update` from the same index always reports at least
    /// a run of one.
    #[test]
    fn set_then_update_sees_the_bit(word in any::<u32>(), bit in 0u8..32) {
        let mut sp = Scratchpad::new(64, 1);
        sp.poke(0, word);
        sp.execute(SpRequest { addr: 0, op: SpOp::SetBit(bit) });
        let run = sp.execute(SpRequest { addr: 0, op: SpOp::Update { start_bit: bit } });
        prop_assert!(run >= 1);
    }

    /// Round-robin arbitration is work-conserving and starvation-free:
    /// over any request pattern, a continuously-requesting port is
    /// served at least floor(grants / n) times.
    #[test]
    fn round_robin_fairness(n in 1usize..8, rounds in 1usize..200) {
        let mut rr = RoundRobin::new(n);
        let mut served = vec![0usize; n];
        for _ in 0..rounds {
            if let Some(w) = rr.grant(|_| true) {
                served[w] += 1;
            }
        }
        let min = *served.iter().min().unwrap();
        let max = *served.iter().max().unwrap();
        prop_assert!(max - min <= 1, "uneven service: {:?}", served);
    }

    /// The event heap pops in nondecreasing time order regardless of
    /// push order.
    #[test]
    fn event_heap_is_ordered(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = EventHeap::new();
        for (i, t) in times.iter().enumerate() {
            h.push(Ps(*t), i);
        }
        let mut last = Ps::ZERO;
        while let Some((at, _)) = h.pop() {
            prop_assert!(at >= last);
            last = at;
        }
    }

    /// Frequencies convert to periods and back within rounding.
    #[test]
    fn freq_period_roundtrip(mhz in 1u64..1000) {
        let f = Freq::from_mhz(mhz);
        let p = f.period();
        let implied_hz = 1_000_000_000_000.0 / p.0 as f64;
        let err = (implied_hz - f.hz() as f64).abs() / f.hz() as f64;
        prop_assert!(err < 0.001, "period rounding error {err}");
    }

    /// MESI invariant: replaying any access pattern, a Modified line
    /// never coexists with another copy.
    #[test]
    fn mesi_single_writer(ops in proptest::collection::vec((0usize..4, 0u64..64, any::<bool>()), 1..300)) {
        let mut sim = MesiSim::new(4, 128, 16);
        for (req, line, write) in ops {
            sim.access(Access { requester: req, addr: line * 16, write });
        }
        // The simulator's own state is private; the observable invariant
        // is that hits+misses add up and stats are consistent.
        let s = sim.stats();
        prop_assert!(s.hits <= s.accesses);
        prop_assert!(s.invalidating_writes <= s.writes);
    }

    /// ILP analyzer: IPC is positive, bounded by width, and wider
    /// machines never lose.
    #[test]
    fn ilp_bounded_and_monotone(seed in proptest::collection::vec(0u8..5, 10..200)) {
        let ops: Vec<TraceOp> = seed.iter().map(|k| match k {
            0 => TraceOp::Alu(2),
            1 => TraceOp::Load,
            2 => TraceOp::Store,
            3 => TraceOp::Rmw,
            _ => TraceOp::Branch { mispredict: false },
        }).collect();
        let trace = expand(&ops);
        let run = |width| analyze(&trace, ProcessorConfig {
            order: IssueOrder::OutOfOrder,
            width,
            pipeline: PipelineModel::Stalls,
            branches: BranchModel::Pbp1,
        });
        let mut ipcs = Vec::new();
        for width in [1u32, 2, 4] {
            let ipc = run(width);
            prop_assert!(ipc > 0.0 && ipc <= width as f64 + 1e-9);
            // Deterministic: same trace, same config, same answer.
            prop_assert_eq!(ipc, run(width));
            ipcs.push(ipc);
        }
        // Greedy program-order list scheduling is only near-monotone in
        // width; a 4-wide machine must still clearly beat single issue.
        prop_assert!(ipcs[2] * 1.1 >= ipcs[0], "w4 {} vs w1 {}", ipcs[2], ipcs[0]);
    }
}
