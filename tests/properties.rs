//! Randomized property tests on the core data structures and invariants.
//!
//! These were originally written against `proptest`; the container this
//! repo builds in has no access to crates.io, so they now run on a small
//! hand-rolled deterministic PRNG. Each property draws a fixed number of
//! cases from a seeded xorshift generator, so failures are reproducible
//! by construction, and the shrunk counterexamples proptest found in the
//! past are kept as explicit regression cases.

use nicsim_coherence::{Access, MesiSim};
use nicsim_ilp::{
    analyze, expand, BranchModel, IssueOrder, PipelineModel, ProcessorConfig, TraceOp,
};
use nicsim_mem::{Scratchpad, SpOp, SpRequest};
use nicsim_net::frame::{build_udp_frame, validate_frame};
use nicsim_sim::{EventHeap, Freq, Ps, RoundRobin};

/// Cases drawn per property.
const CASES: u64 = 200;

/// xorshift64* — deterministic, dependency-free, good enough for test
/// case generation.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    /// Uniform draw from `lo..hi`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// Any legal UDP payload survives the build/validate roundtrip with its
/// sequence number intact.
#[test]
fn frame_roundtrip() {
    let mut rng = Rng::new(0xf00d_0001);
    for _ in 0..CASES {
        let seq = rng.u32();
        let payload = rng.range(4, 1473) as usize;
        let f = build_udp_frame(seq, payload);
        let info = validate_frame(&f).unwrap();
        assert_eq!(info.seq, seq);
        assert_eq!(info.udp_payload, payload);
        assert!(f.len() >= 64 && f.len() <= 1518);
    }
}

/// Flipping any payload byte is detected by validation.
#[test]
fn frame_corruption_detected() {
    let mut rng = Rng::new(0xf00d_0002);
    let check = |seq: u32, payload: usize, flip: usize| {
        let mut f = build_udp_frame(seq, payload);
        let idx = 14 + flip % (f.len() - 18); // anywhere in IP..payload
        f[idx] ^= 0x5a;
        assert!(
            validate_frame(&f).is_err(),
            "corruption at byte {idx} of a {payload}-byte payload went undetected"
        );
    };
    // Regression: shrunk counterexample from the proptest era.
    check(0, 443, 962);
    for _ in 0..CASES {
        check(
            rng.u32(),
            rng.range(32, 1473) as usize,
            rng.range(0, 1024) as usize,
        );
    }
}

/// The scratchpad `update` instruction clears exactly the run it
/// reports, and only that run.
#[test]
fn update_clears_exactly_the_run() {
    let mut rng = Rng::new(0xf00d_0003);
    for _ in 0..CASES {
        let word = rng.u32();
        let start = rng.range(0, 32) as u8;
        let mut sp = Scratchpad::new(64, 1);
        sp.poke(0, word);
        let run = sp.execute(SpRequest {
            addr: 0,
            op: SpOp::Update { start_bit: start },
        });
        // Model the expected semantics.
        let mut expect_run = 0;
        let mut b = start as u32;
        while b < 32 && word & (1 << b) != 0 {
            expect_run += 1;
            b += 1;
        }
        assert_eq!(run, expect_run);
        let mask = if expect_run == 0 {
            0
        } else if expect_run == 32 {
            u32::MAX
        } else {
            ((1u32 << expect_run) - 1) << start
        };
        assert_eq!(sp.peek(0), word & !mask);
    }
}

/// `set` then `update` from the same index always reports at least a run
/// of one.
#[test]
fn set_then_update_sees_the_bit() {
    let mut rng = Rng::new(0xf00d_0004);
    for _ in 0..CASES {
        let word = rng.u32();
        let bit = rng.range(0, 32) as u8;
        let mut sp = Scratchpad::new(64, 1);
        sp.poke(0, word);
        sp.execute(SpRequest {
            addr: 0,
            op: SpOp::SetBit(bit),
        });
        let run = sp.execute(SpRequest {
            addr: 0,
            op: SpOp::Update { start_bit: bit },
        });
        assert!(run >= 1);
    }
}

/// Round-robin arbitration is work-conserving and starvation-free: when
/// every port requests continuously, service is even to within one
/// grant.
#[test]
fn round_robin_fairness() {
    let mut rng = Rng::new(0xf00d_0005);
    for _ in 0..CASES {
        let n = rng.range(1, 8) as usize;
        let rounds = rng.range(1, 200) as usize;
        let mut rr = RoundRobin::new(n);
        let mut served = vec![0usize; n];
        for _ in 0..rounds {
            if let Some(w) = rr.grant(|_| true) {
                served[w] += 1;
            }
        }
        let min = *served.iter().min().unwrap();
        let max = *served.iter().max().unwrap();
        assert!(max - min <= 1, "uneven service: {served:?}");
    }
}

/// The event heap pops in nondecreasing time order regardless of push
/// order.
#[test]
fn event_heap_is_ordered() {
    let mut rng = Rng::new(0xf00d_0006);
    for _ in 0..CASES {
        let len = rng.range(1, 200) as usize;
        let mut h = EventHeap::new();
        for i in 0..len {
            h.push(Ps(rng.range(0, 1_000_000)), i);
        }
        let mut last = Ps::ZERO;
        while let Some((at, _)) = h.pop() {
            assert!(at >= last);
            last = at;
        }
    }
}

/// Frequencies convert to periods and back within rounding.
#[test]
fn freq_period_roundtrip() {
    for mhz in 1u64..1000 {
        let f = Freq::from_mhz(mhz);
        let p = f.period();
        let implied_hz = 1_000_000_000_000.0 / p.0 as f64;
        let err = (implied_hz - f.hz() as f64).abs() / f.hz() as f64;
        assert!(err < 0.001, "period rounding error {err}");
    }
}

/// MESI invariant: replaying any access pattern, the stats stay
/// consistent (hits never exceed accesses, invalidations never exceed
/// writes).
#[test]
fn mesi_single_writer() {
    let mut rng = Rng::new(0xf00d_0007);
    for _ in 0..CASES {
        let ops = rng.range(1, 300) as usize;
        let mut sim = MesiSim::new(4, 128, 16);
        for _ in 0..ops {
            sim.access(Access {
                requester: rng.range(0, 4) as usize,
                addr: rng.range(0, 64) * 16,
                write: rng.bool(),
            });
        }
        let s = sim.stats();
        assert!(s.hits <= s.accesses);
        assert!(s.invalidating_writes <= s.writes);
    }
}

fn ilp_ops_from_seed(seed: &[u8]) -> Vec<TraceOp> {
    seed.iter()
        .map(|k| match k {
            0 => TraceOp::Alu(2),
            1 => TraceOp::Load,
            2 => TraceOp::Store,
            3 => TraceOp::Rmw,
            _ => TraceOp::Branch { mispredict: false },
        })
        .collect()
}

fn ilp_check(ops: &[TraceOp]) {
    let trace = expand(ops);
    let run = |width| {
        analyze(
            &trace,
            ProcessorConfig {
                order: IssueOrder::OutOfOrder,
                width,
                pipeline: PipelineModel::Stalls,
                branches: BranchModel::Pbp1,
            },
        )
    };
    let mut ipcs = Vec::new();
    for width in [1u32, 2, 4] {
        let ipc = run(width);
        assert!(ipc > 0.0 && ipc <= width as f64 + 1e-9);
        // Deterministic: same trace, same config, same answer.
        assert_eq!(ipc, run(width));
        ipcs.push(ipc);
    }
    // Greedy program-order list scheduling is only near-monotone in
    // width; a 4-wide machine must still clearly beat single issue.
    assert!(ipcs[2] * 1.1 >= ipcs[0], "w4 {} vs w1 {}", ipcs[2], ipcs[0]);
}

/// ILP analyzer: IPC is positive, bounded by width, and wider machines
/// never clearly lose.
#[test]
fn ilp_bounded_and_monotone() {
    // Regression: shrunk counterexample from the proptest era.
    ilp_check(&ilp_ops_from_seed(&[
        1, 1, 2, 0, 2, 1, 1, 1, 1, 1, 1, 0, 2, 1, 0,
    ]));
    let mut rng = Rng::new(0xf00d_0008);
    for _ in 0..CASES {
        let len = rng.range(10, 200) as usize;
        let seed: Vec<u8> = (0..len).map(|_| rng.range(0, 5) as u8).collect();
        ilp_check(&ilp_ops_from_seed(&seed));
    }
}
