//! System-level invariants: the firmware's progress counters form a
//! lattice of `<=` relations that must hold at any observation point,
//! and frames are conserved end to end.

use nicsim::{FwMode, NicConfig, NicSystem};
use nicsim_sim::Ps;

fn run_system(cfg: NicConfig, us: u64) -> NicSystem {
    let mut sys = NicSystem::build(cfg).finish().unwrap();
    sys.run_until(Ps::from_us(us));
    sys
}

/// All counter relations of the send path, checked via direct scratchpad
/// inspection. The chain follows Figure 1's steps.
fn check_send_chain(sys: &NicSystem) {
    let m = sys.map();
    let sp = sys.scratchpad();
    let mbox = sp.peek(m.sb_mailbox_prod);
    let fetched = sp.peek(m.sb_fetched);
    let parsed = sp.peek(m.sbd_parsed);
    let cons = sp.peek(m.sbd_cons);
    let ready = sp.peek(m.send_ready_commit);
    let mactx_prod = sp.peek(m.mactx_prod);
    let mactx_done = sp.peek(m.mactx_done);
    let claim = sp.peek(m.send_txdone_claim);
    let commit = sp.peek(m.send_txdone_commit);
    assert!(fetched <= mbox, "fetch beyond mailbox: {fetched} > {mbox}");
    assert!(parsed <= fetched, "parse beyond fetch");
    assert!(cons <= parsed, "consume beyond parse");
    assert!(cons.is_multiple_of(2), "BDs consumed in pairs");
    assert!(ready <= cons / 2, "commit beyond allocated frames");
    assert_eq!(mactx_prod, ready, "MAC ring producer is the ready commit");
    assert!(mactx_done <= mactx_prod, "MAC done beyond produced");
    assert!(claim <= mactx_done, "claim beyond MAC done");
    assert!(commit <= claim, "txdone commit beyond claim");
}

/// The receive-path chain, following Figure 2's steps.
fn check_recv_chain(sys: &NicSystem) {
    let m = sys.map();
    let sp = sys.scratchpad();
    let mbox = sp.peek(m.rb_mailbox_prod);
    let fetched = sp.peek(m.rb_fetched);
    let parsed = sp.peek(m.rbd_parsed);
    let cons = sp.peek(m.rbd_cons);
    let macrx = sp.peek(m.macrx_prod);
    let claim = sp.peek(m.recv_claim);
    let commit = sp.peek(m.recv_commit);
    assert!(fetched <= mbox);
    assert!(parsed <= fetched);
    assert!(cons <= parsed);
    assert!(claim <= macrx, "claimed frames beyond MAC production");
    assert_eq!(cons, claim, "one host buffer consumed per claimed frame");
    assert!(commit <= claim, "commit beyond claim");
}

#[test]
fn counter_lattice_holds_over_time() {
    let cfg = NicConfig::builder().cores(2).cpu_mhz(500).build().unwrap();
    let mut sys = NicSystem::build(cfg).finish().unwrap();
    for step in 1..=20u64 {
        sys.run_until(Ps::from_us(step * 17));
        check_send_chain(&sys);
        check_recv_chain(&sys);
    }
}

#[test]
fn counter_lattice_holds_under_overload() {
    // One slow core under line-rate input: drops occur, invariants hold.
    let cfg = NicConfig::builder()
        .cores(1)
        .cpu_mhz(120)
        .udp_payload(100)
        .build()
        .unwrap();
    let mut sys = NicSystem::build(cfg).finish().unwrap();
    for step in 1..=10u64 {
        sys.run_until(Ps::from_us(step * 60));
        check_send_chain(&sys);
        check_recv_chain(&sys);
    }
}

#[test]
fn counter_lattice_holds_in_software_mode() {
    let cfg = NicConfig::builder()
        .cores(3)
        .cpu_mhz(400)
        .mode(FwMode::SoftwareOnly)
        .build()
        .unwrap();
    let mut sys = NicSystem::build(cfg).finish().unwrap();
    for step in 1..=10u64 {
        sys.run_until(Ps::from_us(step * 40));
        check_send_chain(&sys);
        check_recv_chain(&sys);
    }
}

#[test]
fn frames_are_conserved() {
    let sys = run_system(
        NicConfig::builder().cores(2).cpu_mhz(500).build().unwrap(),
        400,
    );
    let s = sys.collect();
    let m = sys.map();
    let sp = sys.scratchpad();
    // Every frame the driver counted was committed by the firmware.
    let commit = sp.peek(m.recv_commit) as u64;
    assert!(
        s.rx_frames <= commit,
        "driver saw {} frames but firmware committed {commit}",
        s.rx_frames
    );
    // Transmit: wire frames == MAC done counter.
    let done = sp.peek(m.mactx_done) as u64;
    assert_eq!(s.tx_frames, done, "wire frames vs MAC done counter");
    s.assert_clean();
}

#[test]
fn stop_drains_to_a_consistent_state() {
    let cfg = NicConfig::builder().cores(2).cpu_mhz(500).build().unwrap();
    let mut sys = NicSystem::build(cfg).finish().unwrap();
    sys.run_until(Ps::from_us(120));
    sys.stop(Ps::from_ms(10));
    check_send_chain(&sys);
    check_recv_chain(&sys);
    // All locks must be released once every core has halted.
    let m = sys.map();
    let sp = sys.scratchpad();
    for lock in [
        m.lock_sb_fetch,
        m.lock_rb_fetch,
        m.lock_dmard,
        m.lock_dmawr,
        m.lock_sbd,
        m.lock_sbd_parse,
        m.lock_rbd_parse,
        m.lock_rxclaim,
        m.lock_dmard_claim,
        m.lock_dmawr_claim,
        m.lock_mactx_claim,
        m.lock_send_ready_commit,
        m.lock_send_txdone_commit,
        m.lock_recv_commit,
    ] {
        assert_eq!(sp.peek(lock), 0, "lock {lock:#x} still held after halt");
    }
}

#[test]
fn firmware_statistics_track_progress() {
    let sys = run_system(
        NicConfig::builder().cores(2).cpu_mhz(500).build().unwrap(),
        300,
    );
    let m = sys.map();
    let sp = sys.scratchpad();
    // stats: 0 = tx started, 1 = tx completed, 2 = rx started,
    // 3 = rx returned. They may lag the counters slightly (racy adds)
    // but must be in the right ballpark.
    let tx_started = sp.peek(m.stat(0));
    let tx_done = sp.peek(m.stat(1));
    let rx_started = sp.peek(m.stat(2));
    let rx_returned = sp.peek(m.stat(3));
    let alloc = sp.peek(m.sbd_cons) / 2;
    let commit = sp.peek(m.recv_commit);
    assert!(tx_started > 0 && rx_started > 0);
    assert!(tx_done <= tx_started);
    assert!(rx_returned <= rx_started);
    // Unsynchronized counters may lose a few updates, never gain them.
    assert!(tx_started <= alloc);
    assert!(rx_returned <= commit);
}

#[test]
fn scratchpad_bandwidth_is_within_peak() {
    let mut sys = NicSystem::build(NicConfig::builder().cores(2).cpu_mhz(500).build().unwrap())
        .finish()
        .unwrap();
    let s = sys.run_measured(Ps::from_us(150), Ps::from_us(200));
    let peak = sys.config().banks as f64 * 4.0 * 8.0 * sys.config().cpu_mhz as f64 * 1e6 / 1e9;
    assert!(
        s.scratchpad_gbps <= peak,
        "consumed {} Gb/s above peak {peak}",
        s.scratchpad_gbps
    );
    assert!(s.frame_mem_gbps <= 64.0, "frame memory above GDDR peak");
}

#[test]
fn ipc_breakdown_sums_to_unity_when_busy() {
    use nicsim_cpu::StallBucket;
    // 200 MHz, one core: saturated, the core never idles.
    let mut sys = NicSystem::build(NicConfig::builder().cores(1).cpu_mhz(200).build().unwrap())
        .finish()
        .unwrap();
    let s = sys.run_measured(Ps::from_us(300), Ps::from_us(300));
    let total: f64 = StallBucket::ALL
        .iter()
        .map(|&b| s.ipc_contribution(b))
        .sum();
    assert!(
        (total - 1.0).abs() < 0.01,
        "stall buckets must account for every cycle, got {total}"
    );
}

#[test]
fn misalignment_waste_is_nonzero_but_bounded() {
    let mut sys = NicSystem::build(NicConfig::builder().cores(2).cpu_mhz(500).build().unwrap())
        .finish()
        .unwrap();
    let s = sys.run_measured(Ps::from_us(200), Ps::from_us(300));
    // Headers are 42 bytes and frames land at +2 offsets, so some waste
    // is inevitable (§6.2) — but it must stay a small fraction.
    assert!(s.frame_mem_wasted_bytes > 0, "expected misalignment waste");
    let frac =
        s.frame_mem_wasted_bytes as f64 * 8.0 / s.window.as_secs_f64() / 1e9 / s.frame_mem_gbps;
    assert!(frac < 0.05, "waste fraction {frac} too high");
}
