//! Workspace facade for the `nicsim` reproduction of *An Efficient
//! Programmable 10 Gigabit Ethernet Network Interface Card* (HPCA 2005).
//!
//! Re-exports the public API of the [`nicsim`] core crate; the
//! workspace-level `examples/` and `tests/` directories build against
//! this crate. See the README for the repository tour and
//! EXPERIMENTS.md for paper-vs-measured results.

pub use nicsim::*;
