//! Workspace facade for the `nicsim` reproduction of *An Efficient
//! Programmable 10 Gigabit Ethernet Network Interface Card* (HPCA 2005).
//!
//! Re-exports the public API of the [`nicsim`] core crate plus the
//! [`nicsim_exp`] experiment engine, so downstream code (and the
//! workspace-level `examples/` and `tests/`) needs a single import
//! path:
//!
//! ```no_run
//! use nicsim_repro::{Experiment, NicConfig};
//!
//! let report = Experiment::new("quickstart").run(NicConfig::rmw_166());
//! println!("{:.2} Gb/s duplex", report.stats.total_udp_gbps());
//! ```
//!
//! See the README for the repository tour and EXPERIMENTS.md for
//! paper-vs-measured results and the `results/*.json` schema.

pub use nicsim::*;
pub use nicsim_exp::{
    config_to_json, git_describe, latency_to_json, mode_str, stats_to_json, Experiment, Json,
    RunReport, RunSpec, Sweep, SweepReport, SCHEMA,
};

/// The experiment engine crate, re-exported whole for access to its
/// submodules (e.g. [`nicsim_exp::json`]).
pub use nicsim_exp as exp;
